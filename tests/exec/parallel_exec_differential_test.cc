// The randomized differential executor suite: every query shape runs at
// dop ∈ {1,2,4,8} × batch_rows ∈ {1,3,4096} × spill on/off, and each
// parallel/spilled result must match the serial in-memory reference —
// row-identical when the plan claims an ordering property, multiset-equal
// (via a canonical re-sort) otherwise. Every drained stream is wrapped in
// exec::CheckOrder, so a plan that *claims* an ordering it does not
// deliver fails loudly, not silently. The suite also asserts the paper's
// headline invariant end to end: parallelizing an OD-aware plan never
// reintroduces an elided sort (EXPLAIN stays Sort-free, stats.sorts == 0).
//
// Inputs cover the adversarial shapes called out in the issue: duplicate-
// heavy keys, NaN-bearing doubles, empty partitions/fragments (dop larger
// than the row count), single-row morsels, and empty result sets — plus
// all thirteen warehouse date-query templates, the daily-sales report
// (where the serial plan elides join + hash + sort), and the Example 5
// tax ORDER BY.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "engine/index.h"
#include "engine/ops.h"
#include "engine/partition.h"
#include "exec/operator.h"
#include "optimizer/date_rewrite.h"
#include "optimizer/planner.h"
#include "theory/theory.h"
#include "warehouse/date_dim.h"
#include "warehouse/queries.h"
#include "warehouse/star_schema.h"
#include "warehouse/tax_schedule.h"

namespace od {
namespace opt {
namespace {

using engine::AggSpec;
using engine::DataType;
using engine::Predicate;
using engine::Schema;
using engine::SortSpec;
using engine::Table;

bool ExplainMentions(const PhysicalPlan& plan, const std::string& token) {
  return plan.Explain().find(token) != std::string::npos;
}

// Doubles compare NaN-aware and with a tiny relative tolerance: parallel
// aggregation reassociates floating-point sums (per-fragment partials are
// merged after the fragments join), which may legally move the last ulp
// of a sum/avg but nothing more. Everything else must be identical.
bool DoublesMatch(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  if (a == b) return true;
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-9 * scale;
}

::testing::AssertionResult RowsIdentical(const Table& ref, const Table& got) {
  if (got.num_columns() != ref.num_columns()) {
    return ::testing::AssertionFailure()
           << "column count " << got.num_columns() << " vs reference "
           << ref.num_columns();
  }
  if (got.num_rows() != ref.num_rows()) {
    return ::testing::AssertionFailure() << "row count " << got.num_rows()
                                         << " vs reference " << ref.num_rows();
  }
  for (int64_t r = 0; r < ref.num_rows(); ++r) {
    for (int c = 0; c < ref.num_columns(); ++c) {
      const auto& rc = ref.col(c);
      const auto& gc = got.col(c);
      bool same = true;
      switch (rc.type()) {
        case DataType::kInt64: same = rc.Int(r) == gc.Int(r); break;
        case DataType::kDouble: same = DoublesMatch(rc.Double(r), gc.Double(r)); break;
        case DataType::kString: same = rc.Str(r) == gc.Str(r); break;
      }
      if (!same) {
        return ::testing::AssertionFailure()
               << "row " << r << " col " << c << ": " << gc.Get(r).ToString()
               << " vs reference " << rc.Get(r).ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// Canonicalizes an order-free result for comparison: a stable sort by
// every column (od-total on doubles, so NaNs order too). Used only when
// the plan claims no ordering — group keys are unique there, so the sort
// is deterministic regardless of ulp-level aggregate differences.
Table Canonical(const Table& t) {
  SortSpec all;
  for (int c = 0; c < t.num_columns(); ++c) all.push_back(c);
  return engine::SortBy(t, all);
}

// Compiles `plan`, wraps the root in exec::CheckOrder (the drain-side
// property test: the claimed ordering is validated row by row with
// Column::Compare / od::CompareDoubles semantics), and drains.
Table RunChecked(const PhysicalPlan& plan, ExecStats* stats) {
  exec::OpPtr op = exec::CheckOrder(plan.Compile(stats));
  return exec::Drain(op.get(), stats);
}

// The harness: serial reference once, then the full dop × batch × spill
// sweep. `pool` has 4 worker threads; dop 8 exercises more fragments than
// workers (and, on small inputs, empty fragments).
void SweepAgainstSerial(const LogicalQuery& q, common::ThreadPool* pool) {
  PhysicalPlan serial = PlanQuery(q);
  ExecStats ref_stats;
  Table ref = serial.Execute(&ref_stats);
  const bool serial_has_sort = ExplainMentions(serial, "Sort");
  const SortSpec serial_order = serial.root().out_ordering;
  Table ref_canonical = serial_order.empty() ? Canonical(ref) : Table();

  // Zero out the per-fragment startup tax: these are test-sized inputs,
  // and the point is to exercise the parallel shapes, not to model them.
  CostModel cm;
  cm.fragment_startup = 0.0;

  for (int dop : {1, 2, 4, 8}) {
    for (int64_t batch : {int64_t{1}, int64_t{3}, int64_t{4096}}) {
      for (int64_t budget : {int64_t{-1}, int64_t{256}}) {
        SCOPED_TRACE(q.name + " dop=" + std::to_string(dop) + " batch=" +
                     std::to_string(batch) + " spill_budget=" +
                     std::to_string(budget));
        PlanOptions opts;
        opts.dop = dop;
        opts.pool = pool;
        opts.spill_budget_rows = budget;
        opts.batch_rows = batch;
        PhysicalPlan plan = PlanQuery(q, cm, opts);

        // Parallelism must not reintroduce an elided sort: if the serial
        // OD-aware plan is Sort-free, so is every parallel variant.
        if (!serial_has_sort) {
          EXPECT_FALSE(ExplainMentions(plan, "Sort"))
              << "parallel plan reintroduced a sort:\n" << plan.Explain();
        }
        // And the parallel plan claims exactly the serial ordering.
        EXPECT_EQ(plan.root().out_ordering, serial_order);

        ExecStats stats;
        Table out = RunChecked(plan, &stats);
        if (!serial_has_sort) EXPECT_EQ(stats.sorts, 0);
        if (serial_order.empty()) {
          EXPECT_TRUE(RowsIdentical(ref_canonical, Canonical(out)));
        } else {
          EXPECT_TRUE(RowsIdentical(ref, out));
        }
      }
    }
  }

  // The nested arm: depth-2 exchanges (the partial-aggregation template
  // subdivides each fragment's morsel behind an inner exchange) must be
  // just as bit-identical — and just as sort-free — as the flat plans.
  for (int64_t batch : {int64_t{3}, int64_t{4096}}) {
    SCOPED_TRACE(q.name + " nested dop=4 depth=2 batch=" +
                 std::to_string(batch));
    PlanOptions opts;
    opts.dop = 4;
    opts.pool = pool;
    opts.batch_rows = batch;
    opts.max_exchange_depth = 2;
    PhysicalPlan plan = PlanQuery(q, cm, opts);
    if (!serial_has_sort) {
      EXPECT_FALSE(ExplainMentions(plan, "Sort"))
          << "nested plan reintroduced a sort:\n" << plan.Explain();
    }
    EXPECT_EQ(plan.root().out_ordering, serial_order);
    ExecStats stats;
    Table out = RunChecked(plan, &stats);
    if (!serial_has_sort) EXPECT_EQ(stats.sorts, 0);
    if (serial_order.empty()) {
      EXPECT_TRUE(RowsIdentical(ref_canonical, Canonical(out)));
    } else {
      EXPECT_TRUE(RowsIdentical(ref, out));
    }
  }
}

// ---------------------------------------------------------------------------
// Warehouse star-schema queries (the thirteen date templates + the two
// order-aware showcases), on a generated fact ⋈ date_dim star.

class WarehouseDifferentialTest : public ::testing::Test {
 protected:
  static constexpr int kStartYear = 1998;
  static constexpr int kYears = 4;

  void SetUp() override {
    dim_ = warehouse::GenerateDateDim(kStartYear, kYears);
    const int64_t first_sk = dim_.col(0).Int(0);
    fact_ = warehouse::GenerateStoreSales(/*num_rows=*/12000, first_sk,
                                          dim_.num_rows(), /*num_items=*/50,
                                          /*num_stores=*/10, /*seed=*/42);
    index_ = std::make_unique<engine::OrderedIndex>(&fact_,
                                                    engine::SortSpec{0});
    parts_ = std::make_unique<engine::PartitionedTable>(
        engine::PartitionedTable::PartitionByRange(fact_, 0, 16));
    dim_ods_ = std::make_shared<theory::Theory>(warehouse::DateDimOds());
    pool_ = std::make_unique<common::ThreadPool>(4);
  }

  Table dim_, fact_;
  std::unique_ptr<engine::OrderedIndex> index_;
  std::unique_ptr<engine::PartitionedTable> parts_;
  std::shared_ptr<theory::Theory> dim_ods_;
  std::unique_ptr<common::ThreadPool> pool_;
};

TEST_F(WarehouseDifferentialTest, AllThirteenDateTemplates) {
  const auto queries = warehouse::TpcdsDateQueries(kStartYear, kYears);
  ASSERT_EQ(queries.size(), 13u);
  for (const auto& dq : queries) {
    LogicalQuery q = warehouse::ToLogicalQuery(dq, &fact_, &dim_, index_.get(),
                                               parts_.get(), dim_ods_);
    SweepAgainstSerial(q, pool_.get());
  }
}

TEST_F(WarehouseDifferentialTest, DailySalesStaysSortFreeAtEveryDop) {
  LogicalQuery q = warehouse::DailySalesQuery(
      &fact_, &dim_, index_.get(), parts_.get(), dim_ods_, kStartYear + 1);
  // Precondition of the headline assertion: the serial plan really is the
  // everything-elided shape.
  PhysicalPlan serial = PlanQuery(q);
  ASSERT_FALSE(ExplainMentions(serial, "Sort"));
  ASSERT_EQ(serial.joins_elided(), 1);
  SweepAgainstSerial(q, pool_.get());
}

TEST_F(WarehouseDifferentialTest, DailySalesParallelPlanUsesAnExchange) {
  LogicalQuery q = warehouse::DailySalesQuery(
      &fact_, &dim_, index_.get(), parts_.get(), dim_ods_, kStartYear + 1);
  CostModel cm;
  cm.fragment_startup = 0.0;
  PlanOptions opts;
  opts.dop = 4;
  opts.pool = pool_.get();
  PhysicalPlan plan = PlanQuery(q, cm, opts);
  // The parallel shape is real (an exchange or a parallel aggregate), the
  // merge carries the OD proof, and no sort appears anywhere.
  EXPECT_TRUE(ExplainMentions(plan, "Exchange") ||
              ExplainMentions(plan, "ParallelHashAggregate"))
      << plan.Explain();
  EXPECT_FALSE(ExplainMentions(plan, "Sort")) << plan.Explain();
  bool has_merge_proof = false;
  for (const auto& p : plan.proofs()) {
    if (p.find("morsel") != std::string::npos ||
        p.find("merge") != std::string::npos) {
      has_merge_proof = true;
    }
  }
  EXPECT_TRUE(has_merge_proof) << "no order-preserving-merge proof recorded";
}

TEST_F(WarehouseDifferentialTest, DepthTwoPlanShowsTwoProvenExchanges) {
  // Parallel scan + parallel aggregate in one plan: at depth 2 the
  // partial-aggregation template subdivides each fragment's morsel behind
  // an inner exchange, so EXPLAIN carries two exchanges — and the proofs
  // carry one order-preserving-merge argument per exchange.
  LogicalQuery q = warehouse::DailySalesQuery(
      &fact_, &dim_, index_.get(), parts_.get(), dim_ods_, kStartYear + 1);
  CostModel cm;
  cm.fragment_startup = 0.0;
  PlanOptions opts;
  opts.dop = 4;
  opts.pool = pool_.get();
  opts.max_exchange_depth = 2;
  PhysicalPlan plan = PlanQuery(q, cm, opts);
  const std::string explain = plan.Explain();
  int exchanges = 0;
  for (size_t pos = explain.find("Exchange"); pos != std::string::npos;
       pos = explain.find("Exchange", pos + 1)) {
    ++exchanges;
  }
  EXPECT_GE(exchanges, 2) << explain;
  EXPECT_NE(explain.find("nested"), std::string::npos) << explain;
  EXPECT_FALSE(ExplainMentions(plan, "Sort")) << explain;
  int merge_proofs = 0;
  for (const auto& p : plan.proofs()) {
    if (p.find("k-way merge") != std::string::npos) ++merge_proofs;
  }
  EXPECT_GE(merge_proofs, 2) << "each exchange must record its own proof";

  // And the nested plan still reproduces the serial result exactly.
  PhysicalPlan serial = PlanQuery(q);
  ExecStats ref_stats, stats;
  Table ref = serial.Execute(&ref_stats);
  Table out = RunChecked(plan, &stats);
  EXPECT_EQ(stats.sorts, 0);
  EXPECT_TRUE(RowsIdentical(ref, out));
}

TEST_F(WarehouseDifferentialTest, TaxOrderByOrderedMergeReproducesSerial) {
  Table taxes = warehouse::GenerateTaxTable(/*num_rows=*/8000,
                                            /*max_income=*/250000, /*seed=*/7);
  engine::OrderedIndex income_index(
      &taxes, engine::SortSpec{warehouse::TaxColumns().income});
  auto ods = std::make_shared<theory::Theory>(warehouse::TaxOds());
  LogicalQuery q = warehouse::TaxOrderByQuery(&taxes, &income_index, ods);
  // Serial: index stream provably satisfies ORDER BY bracket, tax.
  PhysicalPlan serial = PlanQuery(q);
  ASSERT_FALSE(ExplainMentions(serial, "Sort"));
  SweepAgainstSerial(q, pool_.get());

  // At dop 4 the chain is split into index-position morsels recombined by
  // the OD-proven ordered merge — still zero sorts.
  CostModel cm;
  cm.fragment_startup = 0.0;
  PlanOptions opts;
  opts.dop = 4;
  opts.pool = pool_.get();
  PhysicalPlan plan = PlanQuery(q, cm, opts);
  EXPECT_TRUE(ExplainMentions(plan, "Exchange")) << plan.Explain();
  EXPECT_TRUE(ExplainMentions(plan, "merge=")) << plan.Explain();
  EXPECT_FALSE(ExplainMentions(plan, "Sort")) << plan.Explain();
}

// ---------------------------------------------------------------------------
// Seeded random tables: duplicate-heavy keys, NaN doubles, empty results,
// and tables smaller than the fragment count (single-row and empty
// morsels).

Table MakeRandomTable(int64_t rows, uint32_t seed) {
  Schema s;
  s.Add("k", DataType::kInt64);
  s.Add("g", DataType::kInt64);
  s.Add("x", DataType::kDouble);
  Table t(s);
  uint64_t state = seed;
  auto next = [&state]() {
    // xorshift64*: deterministic across platforms, no <random> dialects.
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t k = static_cast<int64_t>(next() % 7);   // duplicate-heavy
    const int64_t g = static_cast<int64_t>(next() % 5);
    const double x =
        (next() % 10 == 0) ? nan : static_cast<double>(next() % 4000) * 0.25;
    t.AppendRow({Value(k), Value(g), Value(x)});
  }
  return t;
}

LogicalQuery RandomBase(const std::string& name, const Table* t,
                        const engine::OrderedIndex* index) {
  LogicalQuery q;
  q.name = name;
  q.tables.push_back(TableRef{"rand", t, index, /*partitions=*/nullptr,
                              /*ods=*/nullptr, /*prover=*/nullptr,
                              /*natural_order_col=*/-1});
  q.filters.resize(1);
  return q;
}

class RandomDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override { pool_ = std::make_unique<common::ThreadPool>(4); }
  std::unique_ptr<common::ThreadPool> pool_;
};

TEST_F(RandomDifferentialTest, OrderByNanDoubleKeyWithDuplicates) {
  Table t = MakeRandomTable(5000, /*seed=*/1);
  engine::OrderedIndex index(&t, engine::SortSpec{0});
  LogicalQuery q = RandomBase("rand_order_by_k_x", &t, &index);
  q.order_by = {0, 2};  // k then the NaN-bearing double
  SweepAgainstSerial(q, pool_.get());
}

TEST_F(RandomDifferentialTest, GroupByWithNanAggregatesIncludingAvg) {
  Table t = MakeRandomTable(5000, /*seed=*/2);
  LogicalQuery q = RandomBase("rand_group_by_g", &t, /*index=*/nullptr);
  q.group_cols = {1};
  q.aggs = {{AggSpec::Kind::kCount, 0, "cnt"},
            {AggSpec::Kind::kSum, 2, "sum_x"},
            {AggSpec::Kind::kMin, 2, "min_x"},
            {AggSpec::Kind::kMax, 2, "max_x"},
            {AggSpec::Kind::kAvg, 2, "avg_x"}};
  SweepAgainstSerial(q, pool_.get());
}

TEST_F(RandomDifferentialTest, FilterUnionExchangeAndEmptyResult) {
  Table t = MakeRandomTable(5000, /*seed=*/3);
  {
    LogicalQuery q = RandomBase("rand_filter_k", &t, /*index=*/nullptr);
    q.filters[0] = {Predicate{0, Predicate::Op::kBetween, Value(int64_t{2}),
                              Value(int64_t{5})}};
    SweepAgainstSerial(q, pool_.get());
  }
  {
    // Nothing matches: every fragment is empty, the union is empty.
    LogicalQuery q = RandomBase("rand_filter_none", &t, /*index=*/nullptr);
    q.filters[0] = {
        Predicate{0, Predicate::Op::kEq, Value(int64_t{999}), Value()}};
    SweepAgainstSerial(q, pool_.get());
  }
}

TEST_F(RandomDifferentialTest, MoreFragmentsThanRows) {
  // 3 rows at dop 8: single-row morsels plus genuinely empty fragments.
  Table t = MakeRandomTable(3, /*seed=*/4);
  engine::OrderedIndex index(&t, engine::SortSpec{0});
  {
    LogicalQuery q = RandomBase("tiny_order_by", &t, &index);
    q.order_by = {0};
    SweepAgainstSerial(q, pool_.get());
  }
  {
    LogicalQuery q = RandomBase("tiny_group_by", &t, /*index=*/nullptr);
    q.group_cols = {1};
    q.aggs = {{AggSpec::Kind::kSum, 2, "sum_x"}};
    SweepAgainstSerial(q, pool_.get());
  }
}

TEST_F(RandomDifferentialTest, EmptyTable) {
  Table t = MakeRandomTable(0, /*seed=*/5);
  LogicalQuery q = RandomBase("empty_scan", &t, /*index=*/nullptr);
  SweepAgainstSerial(q, pool_.get());
}

}  // namespace
}  // namespace opt
}  // namespace od
