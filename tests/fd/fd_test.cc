#include "fd/fd_set.h"

#include <gtest/gtest.h>

#include "fd/armstrong_fd.h"

namespace od {
namespace fd {
namespace {

TEST(FdSetTest, ClosureBasics) {
  FdSet f;
  f.Add(AttributeSet{0}, AttributeSet{1});       // A → B
  f.Add(AttributeSet{1}, AttributeSet{2});       // B → C
  f.Add(AttributeSet{2, 3}, AttributeSet{4});    // CD → E
  EXPECT_EQ(f.Closure(AttributeSet{0}), (AttributeSet{0, 1, 2}));
  EXPECT_EQ(f.Closure(AttributeSet{0, 3}), (AttributeSet{0, 1, 2, 3, 4}));
  EXPECT_EQ(f.Closure(AttributeSet{3}), (AttributeSet{3}));
}

TEST(FdSetTest, Implication) {
  FdSet f;
  f.Add(AttributeSet{0}, AttributeSet{1});
  f.Add(AttributeSet{1}, AttributeSet{2});
  EXPECT_TRUE(f.Implies(AttributeSet{0}, AttributeSet{2}));    // transitivity
  EXPECT_TRUE(f.Implies(AttributeSet{0, 2}, AttributeSet{1})); // augmentation
  EXPECT_TRUE(f.Implies(AttributeSet{1}, AttributeSet{1}));    // reflexivity
  EXPECT_FALSE(f.Implies(AttributeSet{1}, AttributeSet{0}));
  EXPECT_FALSE(f.Implies(AttributeSet{2}, AttributeSet{1}));
}

TEST(FdSetTest, RemoveAndEquality) {
  FdSet f;
  f.Add(AttributeSet{0}, AttributeSet{1});
  f.Add(AttributeSet{1}, AttributeSet{2});
  f.Add(AttributeSet{0}, AttributeSet{1});  // duplicate entry
  FdSet g = f;
  EXPECT_EQ(f, g);
  // Remove drops exactly the FIRST match, preserving order.
  EXPECT_TRUE(g.Remove(FunctionalDependency(AttributeSet{0}, AttributeSet{1})));
  EXPECT_EQ(g.Size(), 2);
  EXPECT_EQ(g.fds()[0], FunctionalDependency(AttributeSet{1}, AttributeSet{2}));
  EXPECT_EQ(g.fds()[1], FunctionalDependency(AttributeSet{0}, AttributeSet{1}));
  EXPECT_NE(f, g);
  // Removing something absent is a no-op signal.
  EXPECT_FALSE(
      g.Remove(FunctionalDependency(AttributeSet{4}, AttributeSet{5})));
  // RemoveAt erases positionally.
  g.RemoveAt(0);
  EXPECT_EQ(g.Size(), 1);
  EXPECT_EQ(g.fds()[0], FunctionalDependency(AttributeSet{0}, AttributeSet{1}));
  // operator== is syntactic: same FDs in a different order compare unequal.
  FdSet ab;
  ab.Add(AttributeSet{0}, AttributeSet{1});
  ab.Add(AttributeSet{1}, AttributeSet{2});
  FdSet ba;
  ba.Add(AttributeSet{1}, AttributeSet{2});
  ba.Add(AttributeSet{0}, AttributeSet{1});
  EXPECT_NE(ab, ba);
}

TEST(FdSetTest, BoundedClosureEarlyExitAndSupport) {
  FdSet f;
  f.Add(AttributeSet{0}, AttributeSet{1});     // 0: A → B
  f.Add(AttributeSet{1}, AttributeSet{2});     // 1: B → C
  f.Add(AttributeSet{2}, AttributeSet{3});     // 2: C → D
  f.Add(AttributeSet{5}, AttributeSet{6});     // 3: F → G (disconnected)
  // Early exit: asking A → B stops before chasing the chain to D, so only
  // the first FD fires.
  std::vector<int> used;
  EXPECT_TRUE(f.Implies(AttributeSet{0}, AttributeSet{1}, &used));
  EXPECT_EQ(used, (std::vector<int>{0}));
  // A → C needs the first two.
  EXPECT_TRUE(f.Implies(AttributeSet{0}, AttributeSet{2}, &used));
  EXPECT_EQ(used, (std::vector<int>{0, 1}));
  // The support is a real certificate: those FDs alone imply the target.
  FdSet only_support;
  for (int i : used) only_support.Add(f.fds()[i]);
  EXPECT_TRUE(only_support.Implies(AttributeSet{0}, AttributeSet{2}));
  // Target already covered by x: closure returns immediately, no FDs fire.
  EXPECT_EQ(f.Closure(AttributeSet{0, 2}, AttributeSet{2}, &used),
            (AttributeSet{0, 2}));
  EXPECT_TRUE(used.empty());
  // A miss still computes the honest (full) closure.
  EXPECT_FALSE(f.Implies(AttributeSet{1}, AttributeSet{0}, &used));
  EXPECT_EQ(f.Closure(AttributeSet{1}), (AttributeSet{1, 2, 3}));
}

TEST(FdSetTest, CandidateKeys) {
  // Classic: R(A,B,C) with A → B, B → C: key is {A}.
  FdSet f;
  f.Add(AttributeSet{0}, AttributeSet{1});
  f.Add(AttributeSet{1}, AttributeSet{2});
  auto keys = f.CandidateKeys(AttributeSet{0, 1, 2});
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (AttributeSet{0}));

  // R(A,B) with A → B and B → A: keys {A} and {B}.
  FdSet g;
  g.Add(AttributeSet{0}, AttributeSet{1});
  g.Add(AttributeSet{1}, AttributeSet{0});
  auto keys2 = g.CandidateKeys(AttributeSet{0, 1});
  EXPECT_EQ(keys2.size(), 2u);
}

TEST(FdSetTest, MinimalCover) {
  FdSet f;
  f.Add(AttributeSet{0}, AttributeSet{1, 2});     // A → BC
  f.Add(AttributeSet{1}, AttributeSet{2});        // B → C
  f.Add(AttributeSet{0, 1}, AttributeSet{2});     // AB → C (redundant)
  FdSet cover = f.MinimalCover();
  // The cover must be equivalent to the original.
  for (const auto& dep : f.fds()) {
    EXPECT_TRUE(cover.Implies(dep));
  }
  for (const auto& dep : cover.fds()) {
    EXPECT_TRUE(f.Implies(dep));
    EXPECT_EQ(dep.rhs.Size(), 1);  // singleton RHS
  }
  // A → C and AB → C must have been eliminated/absorbed.
  EXPECT_LE(cover.Size(), 3);
}

TEST(FdSetTest, SatisfactionOnInstances) {
  Relation r = Relation::FromInts({{1, 10, 5}, {1, 10, 5}, {2, 20, 5}});
  EXPECT_TRUE(Satisfies(r, FunctionalDependency(AttributeSet{0},
                                                AttributeSet{1})));
  EXPECT_TRUE(Satisfies(r, FunctionalDependency(AttributeSet{},
                                                AttributeSet{2})));
  Relation bad = Relation::FromInts({{1, 10}, {1, 11}});
  EXPECT_FALSE(Satisfies(bad, FunctionalDependency(AttributeSet{0},
                                                   AttributeSet{1})));
}

TEST(FdProjectionTest, OdToFd) {
  DependencySet m;
  m.Add(AttributeList({0, 1}), AttributeList({2}));
  FdSet f = FdProjection(m);
  EXPECT_TRUE(f.Implies(AttributeSet{0, 1}, AttributeSet{2}));
  EXPECT_FALSE(f.Implies(AttributeSet{0}, AttributeSet{2}));
}

TEST(FdAsOdTest, FdShape) {
  OrderDependency dep =
      FdAsOd(FunctionalDependency(AttributeSet{0, 2}, AttributeSet{1}));
  EXPECT_TRUE(dep.IsFdShaped());
  EXPECT_EQ(dep.lhs, (AttributeList{0, 2}));
  EXPECT_EQ(dep.rhs, (AttributeList{0, 2, 1}));
}

TEST(ArmstrongFdTest, TwoRowCounterexample) {
  FdSet f;
  f.Add(AttributeSet{0}, AttributeSet{1});  // A → B
  const AttributeSet universe{0, 1, 2};
  // Closure of {A} is {A, B}: the two-row table splits A → C but not A → B.
  Relation r = TwoRowFdCounterexample(f, AttributeSet{0}, universe);
  EXPECT_TRUE(Satisfies(r, FunctionalDependency(AttributeSet{0},
                                                AttributeSet{1})));
  EXPECT_FALSE(Satisfies(r, FunctionalDependency(AttributeSet{0},
                                                 AttributeSet{2})));
}

}  // namespace
}  // namespace fd
}  // namespace od
