// Threaded DiscoverODs must be indistinguishable from the serial run:
// identical OD covers (same ODs, same order), identical canonical results,
// identical traversal statistics and partition counts — on Armstrong tables
// generated from known theories and on synthetic tables with planted
// structure. Under -DOD_SANITIZE=thread this doubles as the race check for
// the prewarmed PartitionCache and the parallel level validation.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "armstrong/generator.h"
#include "core/parser.h"
#include "discovery/discovery.h"
#include "engine/table.h"
#include "prover/prover.h"
#include "test_table_util.h"

namespace od {
namespace discovery {
namespace {

bool SameConstancy(const ConstancyOd& x, const ConstancyOd& y) {
  return x.context == y.context && x.attr == y.attr;
}

bool SameCompatibility(const CompatibilityOd& x, const CompatibilityOd& y) {
  return x.context == y.context && x.a == y.a && x.b == y.b;
}

void ExpectIdentical(const DiscoveryResult& serial,
                     const DiscoveryResult& threaded) {
  // The full list-form cover, element by element (order included).
  ASSERT_EQ(serial.ods.Size(), threaded.ods.Size());
  for (int i = 0; i < serial.ods.Size(); ++i) {
    EXPECT_EQ(serial.ods[i], threaded.ods[i]) << "OD at position " << i;
  }
  // Canonical forms.
  ASSERT_EQ(serial.constancies.size(), threaded.constancies.size());
  for (size_t i = 0; i < serial.constancies.size(); ++i) {
    EXPECT_TRUE(SameConstancy(serial.constancies[i], threaded.constancies[i]))
        << "constancy at position " << i;
  }
  ASSERT_EQ(serial.compatibilities.size(), threaded.compatibilities.size());
  for (size_t i = 0; i < serial.compatibilities.size(); ++i) {
    EXPECT_TRUE(SameCompatibility(serial.compatibilities[i],
                                  threaded.compatibilities[i]))
        << "compatibility at position " << i;
  }
  // Work accounting: the parallel traversal asks the same questions and
  // materializes the same partitions.
  EXPECT_EQ(serial.stats.nodes_visited, threaded.stats.nodes_visited);
  EXPECT_EQ(serial.stats.nodes_dropped, threaded.stats.nodes_dropped);
  EXPECT_EQ(serial.stats.split_checks, threaded.stats.split_checks);
  EXPECT_EQ(serial.stats.swap_checks, threaded.stats.swap_checks);
  EXPECT_EQ(serial.stats.trivial_swaps_pruned,
            threaded.stats.trivial_swaps_pruned);
  EXPECT_EQ(serial.stats.levels, threaded.stats.levels);
  EXPECT_EQ(serial.partitions_computed, threaded.partitions_computed);
}

class ParallelRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelRoundTripTest, ThreadedCoverIsBitIdenticalToSerial) {
  NameTable names;
  Parser parser(&names);
  auto parsed = parser.ParseSet(GetParam());
  ASSERT_TRUE(parsed.has_value()) << parser.error();
  const DependencySet& m = *parsed;

  Relation armstrong = armstrong::BuildArmstrongTable(m, m.Attributes());
  engine::Table t = TableFromRelation(armstrong, &names);

  DiscoveryResult serial = DiscoverODs(t);
  DiscoveryOptions threaded_opts;
  threaded_opts.num_threads = 4;
  DiscoveryResult threaded = DiscoverODs(t, threaded_opts);
  ExpectIdentical(serial, threaded);

  // And the threaded cover round-trips against ℳ like the serial one does
  // (prover-verified both directions).
  prover::Prover from_m(m);
  for (const OrderDependency& od : threaded.ods.ods()) {
    EXPECT_TRUE(from_m.Implies(od))
        << "threaded OD not implied by ℳ: " << od.ToString(names);
  }
  prover::Prover from_threaded(threaded.ods);
  for (const OrderDependency& od : m.ods()) {
    EXPECT_TRUE(from_threaded.Implies(od))
        << "ℳ member not implied by threaded cover: " << od.ToString(names);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallTheories, ParallelRoundTripTest,
                         ::testing::Values("[a] -> [b]",
                                           "[a] -> [b]; [b] -> [c]",
                                           "[a] ~ [b]",
                                           "[a] <-> [b]",
                                           "[] -> [k]; [a] -> [b]",
                                           "[a] -> [b, c]",
                                           "[a, b] -> [c]",
                                           "[a] -> [c]; [b] -> [c]"));

/// A wider table with planted structure (mirrors bench_discovery's
/// generator): low-cardinality dimension, a function of it, a per-class
/// co-varying column, and noise.
engine::Table PlantedTable(int64_t rows, int cols, uint32_t seed) {
  engine::Schema s;
  for (int c = 0; c < cols; ++c) {
    s.Add("c" + std::to_string(c), engine::DataType::kInt64);
  }
  engine::Table t(s);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int64_t> noise(0, rows / 4 + 1);
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t dim = i % 16;
    t.col(0).AppendInt(dim);
    if (cols > 1) t.col(1).AppendInt(dim * 3 + 1);
    if (cols > 2) t.col(2).AppendInt(dim * 1000 + (i % 97));
    for (int c = 3; c < cols; ++c) t.col(c).AppendInt(noise(rng));
    t.FinishRow();
  }
  return t;
}

TEST(ParallelDiscoveryTest, PlantedTableMatchesAcrossThreadCounts) {
  engine::Table t = PlantedTable(/*rows=*/500, /*cols=*/6, /*seed=*/7);
  DiscoveryResult serial = DiscoverODs(t);
  for (int threads : {2, 4, 8}) {
    DiscoveryOptions opts;
    opts.num_threads = threads;
    DiscoveryResult threaded = DiscoverODs(t, opts);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdentical(serial, threaded);
  }
}

TEST(ParallelDiscoveryTest, BoundedLevelMatchesToo) {
  engine::Table t = PlantedTable(/*rows=*/400, /*cols=*/8, /*seed=*/11);
  DiscoveryOptions serial_opts;
  serial_opts.max_level = 3;
  DiscoveryResult serial = DiscoverODs(t, serial_opts);
  DiscoveryOptions threaded_opts;
  threaded_opts.max_level = 3;
  threaded_opts.num_threads = 4;
  DiscoveryResult threaded = DiscoverODs(t, threaded_opts);
  ExpectIdentical(serial, threaded);
}

TEST(ParallelDiscoveryTest, HardwareConcurrencyRequestWorks) {
  // num_threads = 0 selects hardware concurrency; smoke the path.
  engine::Table t = IntTable({"a", "b"}, {{1, 10}, {2, 20}, {3, 30}});
  DiscoveryResult serial = DiscoverODs(t);
  DiscoveryOptions opts;
  opts.num_threads = 0;
  DiscoveryResult threaded = DiscoverODs(t, opts);
  ExpectIdentical(serial, threaded);
}

}  // namespace
}  // namespace discovery
}  // namespace od
