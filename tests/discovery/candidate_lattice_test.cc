// Tests for the level-wise candidate lattice: TANE-style split candidate
// maintenance, pair-candidate propagation, the implied/trivial pruning
// rules, and the key-node completeness guarantee. A scripted oracle stands
// in for the partition validators so pruning can be observed directly (a
// pruned candidate is one the oracle is never asked about).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/thread_pool.h"
#include "discovery/candidate_lattice.h"

namespace od {
namespace discovery {
namespace {

/// Oracle scripted by explicit truth sets, recording every question asked.
class ScriptedOracle : public ValidationOracle {
 public:
  void SetConstancy(const AttributeSet& ctx, AttributeId a) {
    constancies_.insert({ctx.bits(), a});
  }
  void SetCompatibility(const AttributeSet& ctx, AttributeId a,
                        AttributeId b) {
    compatibilities_.insert({ctx.bits(), a, b});
  }

  bool ConstancyHolds(const AttributeSet& ctx, AttributeId a) override {
    constancy_asked_.insert({ctx.bits(), a});
    return constancies_.count({ctx.bits(), a}) > 0;
  }
  bool CompatibilityHolds(const AttributeSet& ctx, AttributeId a,
                          AttributeId b) override {
    compat_asked_.insert({ctx.bits(), a, b});
    return compatibilities_.count({ctx.bits(), a, b}) > 0;
  }

  bool AskedConstancy(const AttributeSet& ctx, AttributeId a) const {
    return constancy_asked_.count({ctx.bits(), a}) > 0;
  }
  bool AskedCompatibility(const AttributeSet& ctx, AttributeId a,
                          AttributeId b) const {
    return compat_asked_.count({ctx.bits(), a, b}) > 0;
  }
  int64_t compat_questions() const {
    return static_cast<int64_t>(compat_asked_.size());
  }

 private:
  std::set<std::tuple<uint64_t, AttributeId>> constancies_;
  std::set<std::tuple<uint64_t, AttributeId, AttributeId>> compatibilities_;
  std::set<std::tuple<uint64_t, AttributeId>> constancy_asked_;
  std::set<std::tuple<uint64_t, AttributeId, AttributeId>> compat_asked_;
};

bool HasConstancy(const LatticeResult& r, const AttributeSet& ctx,
                  AttributeId a) {
  for (const auto& c : r.constancies) {
    if (c.context == ctx && c.attr == a) return true;
  }
  return false;
}

bool HasCompatibility(const LatticeResult& r, const AttributeSet& ctx,
                      AttributeId a, AttributeId b) {
  for (const auto& c : r.compatibilities) {
    if (c.context == ctx && c.a == a && c.b == b) return true;
  }
  return false;
}

TEST(CandidateLatticeTest, ConstantColumnPrunesEverythingAboutIt) {
  // Attribute 0 is a constant column; 1 and 2 are unconstrained.
  ScriptedOracle oracle;
  oracle.SetConstancy(AttributeSet(), 0);
  LatticeResult r = TraverseLattice(3, oracle);

  EXPECT_TRUE(HasConstancy(r, AttributeSet(), 0));
  ASSERT_EQ(r.constancies.size(), 1u);

  // Constant-column pruning: no compatibility question ever mentions 0 —
  // pairs (0, 1) and (0, 2) are trivially compatible via the FD closure.
  EXPECT_FALSE(oracle.AskedCompatibility(AttributeSet(), 0, 1));
  EXPECT_FALSE(oracle.AskedCompatibility(AttributeSet(), 0, 2));
  EXPECT_TRUE(oracle.AskedCompatibility(AttributeSet(), 1, 2));
  EXPECT_GE(r.stats.trivial_swaps_pruned, 2);

  // And no constancy question uses 0 on the right above level 1, nor in a
  // context (TANE C⁺ removal starves descendants of the constant).
  EXPECT_FALSE(oracle.AskedConstancy(AttributeSet({1}), 0));
  EXPECT_FALSE(oracle.AskedConstancy(AttributeSet({1, 2}), 0));
}

TEST(CandidateLatticeTest, ValidatedPairLeavesSupersetCandidates) {
  // ∅: 0 ~ 1 holds; contexts {2}, {3}, {2, 3} for the same pair are implied
  // by augmentation and must not be validated.
  ScriptedOracle oracle;
  oracle.SetCompatibility(AttributeSet(), 0, 1);
  LatticeResult r = TraverseLattice(4, oracle);

  EXPECT_TRUE(HasCompatibility(r, AttributeSet(), 0, 1));
  EXPECT_FALSE(oracle.AskedCompatibility(AttributeSet({2}), 0, 1));
  EXPECT_FALSE(oracle.AskedCompatibility(AttributeSet({3}), 0, 1));
  EXPECT_FALSE(oracle.AskedCompatibility(AttributeSet({2, 3}), 0, 1));
  // Unsettled pairs keep climbing: (0, 2) fails everywhere, so every
  // context is (correctly) probed for it.
  EXPECT_TRUE(oracle.AskedCompatibility(AttributeSet({1, 3}), 0, 2));
}

TEST(CandidateLatticeTest, MinimalFdFoundOncePerRhs) {
  // FD {0} → 1 holds (and nothing else): the miner must report exactly
  // context {0} for attr 1 and never probe the non-minimal {0, 2} → 1.
  ScriptedOracle oracle;
  oracle.SetConstancy(AttributeSet({0}), 1);
  oracle.SetConstancy(AttributeSet({0, 2}), 1);  // holds but not minimal
  LatticeResult r = TraverseLattice(3, oracle);
  EXPECT_TRUE(HasConstancy(r, AttributeSet({0}), 1));
  ASSERT_EQ(r.constancies.size(), 1u);
  EXPECT_FALSE(oracle.AskedConstancy(AttributeSet({0, 2}), 1));
}

TEST(CandidateLatticeTest, KeyContextsPrunedViaClosureNotNodeDeletion) {
  // Attribute 0 is a key: {0} → 1 and {0} → 2. The completeness pitfall:
  // TANE-style deletion of key nodes would remove {0, 1} / {0, 2} and with
  // them the chain to node {0, 1, 2}, silencing the minimal compatibility
  // OD {1}: 0 ~ 2. The traversal must still find it.
  ScriptedOracle oracle;
  oracle.SetConstancy(AttributeSet({0}), 1);
  oracle.SetConstancy(AttributeSet({0}), 2);
  oracle.SetCompatibility(AttributeSet({1}), 0, 2);
  LatticeResult r = TraverseLattice(3, oracle);

  EXPECT_TRUE(HasCompatibility(r, AttributeSet({1}), 0, 2));

  // Key-context pruning still applies where it is sound: the pair (1, 2)
  // at context {0} is trivial (0 is a key, so {0} → 1), never validated.
  EXPECT_FALSE(oracle.AskedCompatibility(AttributeSet({0}), 1, 2));
  EXPECT_GE(r.stats.trivial_swaps_pruned, 1);
}

TEST(CandidateLatticeTest, EachPairValidatedAtMostOncePerContext) {
  // With nothing holding, the miner must ask about every pair at every
  // context exactly once: sum over pairs {a,b} of 2^(n-2) contexts.
  ScriptedOracle oracle;
  LatticeResult r = TraverseLattice(4, oracle);
  // C(4,2) = 6 pairs, 4 contexts each (subsets of the other two attrs).
  EXPECT_EQ(oracle.compat_questions(), 6 * 4);
  EXPECT_EQ(r.stats.swap_checks, 6 * 4);
  EXPECT_TRUE(r.compatibilities.empty());
  EXPECT_TRUE(r.constancies.empty());
}

TEST(CandidateLatticeTest, MaxLevelCapsTraversal) {
  ScriptedOracle oracle;
  LatticeOptions opts;
  opts.max_level = 2;
  LatticeResult r = TraverseLattice(4, oracle, opts);
  EXPECT_EQ(r.stats.levels, 2);
  // Pairs only at context ∅; no level-3 contexts probed.
  EXPECT_EQ(oracle.compat_questions(), 6);
  EXPECT_FALSE(oracle.AskedCompatibility(AttributeSet({2}), 0, 1));
}

/// A deterministic, thread-safe oracle: answers are pure functions of the
/// question (a hash-derived pattern), so serial and parallel traversals can
/// be compared bit for bit without any shared mutable state.
class PureHashOracle : public ValidationOracle {
 public:
  bool ConstancyHolds(const AttributeSet& ctx, AttributeId a) override {
    return Mix(ctx.bits(), a, 0x9e3779b97f4a7c15ull) % 7 == 0;
  }
  bool CompatibilityHolds(const AttributeSet& ctx, AttributeId a,
                          AttributeId b) override {
    return Mix(ctx.bits(), a * 64 + b, 0xbf58476d1ce4e5b9ull) % 3 == 0;
  }

 private:
  static uint64_t Mix(uint64_t bits, uint64_t salt, uint64_t mult) {
    uint64_t x = (bits + 1) * mult + salt;
    x ^= x >> 31;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 29;
    return x;
  }
};

TEST(CandidateLatticeTest, ParallelTraversalIsBitIdenticalToSerial) {
  PureHashOracle serial_oracle;
  LatticeResult serial = TraverseLattice(6, serial_oracle);

  common::ThreadPool pool(4);
  PureHashOracle parallel_oracle;
  LatticeOptions opts;
  opts.pool = &pool;
  LatticeResult parallel = TraverseLattice(6, parallel_oracle, opts);

  ASSERT_EQ(serial.constancies.size(), parallel.constancies.size());
  for (size_t i = 0; i < serial.constancies.size(); ++i) {
    EXPECT_EQ(serial.constancies[i].context, parallel.constancies[i].context);
    EXPECT_EQ(serial.constancies[i].attr, parallel.constancies[i].attr);
  }
  ASSERT_EQ(serial.compatibilities.size(), parallel.compatibilities.size());
  for (size_t i = 0; i < serial.compatibilities.size(); ++i) {
    EXPECT_EQ(serial.compatibilities[i].context,
              parallel.compatibilities[i].context);
    EXPECT_EQ(serial.compatibilities[i].a, parallel.compatibilities[i].a);
    EXPECT_EQ(serial.compatibilities[i].b, parallel.compatibilities[i].b);
  }
  EXPECT_EQ(serial.stats.nodes_visited, parallel.stats.nodes_visited);
  EXPECT_EQ(serial.stats.nodes_dropped, parallel.stats.nodes_dropped);
  EXPECT_EQ(serial.stats.split_checks, parallel.stats.split_checks);
  EXPECT_EQ(serial.stats.swap_checks, parallel.stats.swap_checks);
  EXPECT_EQ(serial.stats.trivial_swaps_pruned,
            parallel.stats.trivial_swaps_pruned);
  EXPECT_EQ(serial.stats.levels, parallel.stats.levels);
}

TEST(CandidateLatticeTest, SingleThreadPoolTakesSerialPath) {
  // A pool of one thread must not change anything either (the traversal
  // falls back to the serial path, PrepareLevel is never needed).
  PureHashOracle a, b;
  common::ThreadPool pool(1);
  LatticeOptions opts;
  opts.pool = &pool;
  LatticeResult with_pool = TraverseLattice(4, a, opts);
  LatticeResult without = TraverseLattice(4, b);
  EXPECT_EQ(with_pool.constancies.size(), without.constancies.size());
  EXPECT_EQ(with_pool.compatibilities.size(), without.compatibilities.size());
  EXPECT_EQ(with_pool.stats.split_checks, without.stats.split_checks);
  EXPECT_EQ(with_pool.stats.swap_checks, without.stats.swap_checks);
}

TEST(CandidateLatticeTest, NodesDroppedWhenAllCandidatesSettle) {
  // Everything at level ≤ 2 validates: all columns mutually compatible and
  // every single-attribute FD holds. Deeper levels have no work left.
  ScriptedOracle oracle;
  for (AttributeId a = 0; a < 3; ++a) {
    for (AttributeId b = 0; b < 3; ++b) {
      if (a != b) {
        AttributeSet ctx({a});
        oracle.SetConstancy(ctx, b);
      }
    }
  }
  for (AttributeId a = 0; a < 3; ++a) {
    for (AttributeId b = a + 1; b < 3; ++b) {
      oracle.SetCompatibility(AttributeSet(), a, b);
    }
  }
  LatticeResult r = TraverseLattice(3, oracle);
  // All three pairs validated at ∅; FDs found at level 2; level 3's only
  // node is never visited because nothing is left open.
  EXPECT_EQ(r.stats.swap_checks, 3);
  EXPECT_LE(r.stats.levels, 3);
  EXPECT_EQ(r.compatibilities.size(), 3u);
}

}  // namespace
}  // namespace discovery
}  // namespace od
