// End-to-end tests for DiscoverODs: hand-built tables with known
// dependencies, canonical-to-list translation, option handling, and the
// round-trip acceptance test — an Armstrong table generated from a known OD
// set must yield a discovered cover that is prover-equivalent to the
// generating set (implication verified in both directions).

#include <gtest/gtest.h>

#include <stdexcept>

#include "armstrong/generator.h"
#include "core/parser.h"
#include "discovery/discovery.h"
#include "engine/table.h"
#include "prover/prover.h"
#include "test_table_util.h"

namespace od {
namespace discovery {
namespace {

bool ContainsOd(const DependencySet& set, const OrderDependency& od) {
  return set.Contains(od);
}

TEST(DiscoveryTest, ConstantColumn) {
  engine::Table t = IntTable({"a", "k"}, {{1, 9}, {3, 9}, {2, 9}});
  DiscoveryResult r = DiscoverODs(t);
  ASSERT_EQ(r.constancies.size(), 1u);
  EXPECT_TRUE(r.constancies[0].context.IsEmpty());
  EXPECT_EQ(r.constancies[0].attr, 1);
  // List form: [] ↦ [k].
  EXPECT_TRUE(ContainsOd(
      r.ods, OrderDependency(AttributeList::EmptyList(), AttributeList({1}))));
  EXPECT_EQ(r.names.Name(1), "k");
}

TEST(DiscoveryTest, FdShapedWithoutCompatibility) {
  // b is a function of a (and vice versa) but their orders clash.
  engine::Table t = IntTable({"a", "b"}, {{1, 5}, {1, 5}, {2, 3}, {2, 3}});
  DiscoveryResult r = DiscoverODs(t);
  // FDs both ways, as constancy ODs.
  ASSERT_EQ(r.constancies.size(), 2u);
  EXPECT_TRUE(ContainsOd(
      r.ods, OrderDependency(AttributeList({0}), AttributeList({0, 1}))));
  EXPECT_TRUE(ContainsOd(
      r.ods, OrderDependency(AttributeList({1}), AttributeList({1, 0}))));
  // No compatibility: a rises 1 → 2 while b falls 5 → 3.
  EXPECT_TRUE(r.compatibilities.empty());
  // Consequently [a] ↦ [b] must NOT be implied by the discovered set.
  prover::Prover pv(r.ods);
  EXPECT_FALSE(pv.Implies(AttributeList({0}), AttributeList({1})));
  EXPECT_TRUE(pv.ImpliesFd(AttributeSet({0}), AttributeSet({1})));
}

TEST(DiscoveryTest, MonotoneColumnsGiveFullOd) {
  engine::Table t = IntTable({"a", "b"}, {{1, 10}, {2, 20}, {3, 30}});
  DiscoveryResult r = DiscoverODs(t);
  // ∅: a ~ b plus the key FDs make [a] ↦ [b] (and the converse) implied.
  prover::Prover pv(r.ods);
  EXPECT_TRUE(pv.Implies(AttributeList({0}), AttributeList({1})));
  EXPECT_TRUE(pv.Implies(AttributeList({1}), AttributeList({0})));
}

TEST(DiscoveryTest, CompatibilityOnlyInContext) {
  // Within each c-class, a and b co-vary; across classes they swap, and
  // nothing is a function of anything.
  engine::Table t = IntTable({"c", "a", "b"}, {{0, 1, 10},
                                               {0, 1, 10},
                                               {0, 2, 20},
                                               {0, 2, 20},
                                               {1, 100, 1},
                                               {1, 100, 1},
                                               {1, 200, 2},
                                               {1, 200, 2}});
  DiscoveryResult r = DiscoverODs(t);
  bool found = false;
  for (const auto& c : r.compatibilities) {
    if (c.context == AttributeSet({0}) && c.a == 1 && c.b == 2) found = true;
    // Minimality: the empty-context compatibility of (a, b) must be absent.
    EXPECT_FALSE(c.context.IsEmpty() && c.a == 1 && c.b == 2);
  }
  EXPECT_TRUE(found);
  // List form: [c, a, b] ↦ [c, b, a] and back.
  EXPECT_TRUE(ContainsOd(r.ods, OrderDependency(AttributeList({0, 1, 2}),
                                                AttributeList({0, 2, 1}))));
  EXPECT_TRUE(ContainsOd(r.ods, OrderDependency(AttributeList({0, 2, 1}),
                                                AttributeList({0, 1, 2}))));
}

TEST(DiscoveryTest, TinyTablesSatisfyEverything) {
  // With fewer than two rows every OD holds; the minimal cover is "every
  // column is constant".
  engine::Table t0 = IntTable({"a", "b"}, {});
  DiscoveryResult r0 = DiscoverODs(t0);
  ASSERT_EQ(r0.constancies.size(), 2u);
  engine::Table t1 = IntTable({"a", "b"}, {{4, 2}});
  DiscoveryResult r1 = DiscoverODs(t1);
  ASSERT_EQ(r1.constancies.size(), 2u);
  prover::Prover pv(r1.ods);
  EXPECT_TRUE(pv.Implies(AttributeList({0}), AttributeList({1})));
}

TEST(DiscoveryTest, MaxLevelBoundsContexts) {
  engine::Table t = IntTable({"c", "a", "b"}, {{0, 1, 10},
                                               {0, 2, 20},
                                               {1, 100, 1},
                                               {1, 200, 2}});
  DiscoveryOptions opts;
  opts.max_level = 2;
  DiscoveryResult r = DiscoverODs(t, opts);
  for (const auto& c : r.constancies) EXPECT_LE(c.context.Size(), 1);
  for (const auto& c : r.compatibilities) EXPECT_TRUE(c.context.IsEmpty());
}

TEST(DiscoveryTest, TooManyColumnsThrows) {
  engine::Schema s;
  for (int i = 0; i < kMaxAttributes + 1; ++i) {
    s.Add("c" + std::to_string(i), engine::DataType::kInt64);
  }
  engine::Table t(s);
  EXPECT_THROW(DiscoverODs(t), std::invalid_argument);
}

TEST(DiscoveryTest, TranslationShapes) {
  ConstancyOd c{AttributeSet({0, 2}), 1};
  OrderDependency od = ConstancyAsOd(c);
  EXPECT_EQ(od.lhs, AttributeList({0, 2}));
  EXPECT_EQ(od.rhs, AttributeList({0, 2, 1}));
  EXPECT_TRUE(od.IsFdShaped());

  CompatibilityOd p{AttributeSet({3}), 0, 2};
  auto ods = CompatibilityAsOds(p);
  ASSERT_EQ(ods.size(), 2u);
  EXPECT_EQ(ods[0].lhs, AttributeList({3, 0, 2}));
  EXPECT_EQ(ods[0].rhs, AttributeList({3, 2, 0}));
  EXPECT_EQ(ods[1], ods[0].Converse());
}

TEST(DiscoveryTest, TableFromRelationRoundTrip) {
  Relation rel = Relation::FromInts({{1, 2, 3}, {4, 5, 6}});
  engine::Table t = TableFromRelation(rel);
  ASSERT_EQ(t.num_columns(), 3);
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.schema().col(0).name, "A");
  EXPECT_EQ(t.col(2).Int(1), 6);
}

// The acceptance round trip: generate an Armstrong table for ℳ — the table
// satisfies exactly the consequences of ℳ — and mine it. The discovered
// cover and ℳ must then be prover-equivalent: every discovered OD is
// implied by ℳ (soundness of the miner + completeness of the table) and
// every OD of ℳ is implied by the discovered cover (completeness of the
// miner).
class DiscoveryRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DiscoveryRoundTripTest, ProverEquivalentCover) {
  NameTable names;
  Parser parser(&names);
  auto parsed = parser.ParseSet(GetParam());
  ASSERT_TRUE(parsed.has_value()) << parser.error();
  const DependencySet& m = *parsed;

  Relation armstrong = armstrong::BuildArmstrongTable(m, m.Attributes());
  engine::Table t = TableFromRelation(armstrong, &names);
  DiscoveryResult r = DiscoverODs(t);

  prover::Prover from_m(m);
  for (const OrderDependency& od : r.ods.ods()) {
    EXPECT_TRUE(from_m.Implies(od))
        << "discovered OD not implied by ℳ: " << od.ToString(names)
        << "\nℳ:\n" << m.ToString(names) << "table:\n" << armstrong.ToString();
  }

  prover::Prover from_discovered(r.ods);
  for (const OrderDependency& od : m.ods()) {
    EXPECT_TRUE(from_discovered.Implies(od))
        << "ℳ member not implied by discovered cover: " << od.ToString(names)
        << "\ndiscovered:\n" << r.ods.ToString(names) << "table:\n"
        << armstrong.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(SmallTheories, DiscoveryRoundTripTest,
                         ::testing::Values("[a] -> [b]",
                                           "[a] -> [b]; [b] -> [c]",
                                           "[a] ~ [b]",
                                           "[a] <-> [b]",
                                           "[] -> [k]; [a] -> [b]",
                                           "[a] -> [b, c]",
                                           "[a, b] -> [c]",
                                           "[a] -> [c]; [b] -> [c]"));

}  // namespace
}  // namespace discovery
}  // namespace od
