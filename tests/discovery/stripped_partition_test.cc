// Tests for the stripped-partition (position-list-index) layer: base
// partitions per column type, product refinement, the error measure, and
// the cross-level cache.

#include <gtest/gtest.h>

#include <limits>

#include "common/thread_pool.h"
#include "discovery/stripped_partition.h"
#include "engine/table.h"
#include "test_table_util.h"

namespace od {
namespace discovery {
namespace {

TEST(StrippedPartitionTest, UniverseIsOneClass) {
  StrippedPartition p = StrippedPartition::Universe(4);
  ASSERT_EQ(p.num_classes(), 1);
  EXPECT_EQ(p.cls(0), (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(p.Error(), 3);
  EXPECT_FALSE(p.IsKey());
}

TEST(StrippedPartitionTest, UniverseOfTinyTableIsStripped) {
  EXPECT_TRUE(StrippedPartition::Universe(0).IsKey());
  EXPECT_TRUE(StrippedPartition::Universe(1).IsKey());
}

TEST(StrippedPartitionTest, ForColumnGroupsAndStrips) {
  // Column: 7 7 3 9 3 → classes {0,1} and {2,4}; row 3 is stripped.
  engine::Table t = IntTable({"a"}, {{7}, {7}, {3}, {9}, {3}});
  StrippedPartition p = StrippedPartition::ForColumn(t, 0);
  ASSERT_EQ(p.num_classes(), 2);
  // Canonical order: classes sorted by smallest member.
  EXPECT_EQ(p.cls(0), (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(p.cls(1), (std::vector<int64_t>{2, 4}));
  EXPECT_EQ(p.Error(), 2);
}

TEST(StrippedPartitionTest, ForColumnStringsAndDoubles) {
  engine::Schema s;
  s.Add("s", engine::DataType::kString);
  s.Add("d", engine::DataType::kDouble);
  engine::Table t(s);
  t.AppendRow({Value("x"), Value(1.5)});
  t.AppendRow({Value("y"), Value(2.5)});
  t.AppendRow({Value("x"), Value(1.5)});
  StrippedPartition ps = StrippedPartition::ForColumn(t, 0);
  ASSERT_EQ(ps.num_classes(), 1);
  EXPECT_EQ(ps.cls(0), (std::vector<int64_t>{0, 2}));
  StrippedPartition pd = StrippedPartition::ForColumn(t, 1);
  ASSERT_EQ(pd.num_classes(), 1);
  EXPECT_EQ(pd.cls(0), (std::vector<int64_t>{0, 2}));
}

TEST(StrippedPartitionTest, DoubleEdgeCasesGroupConsistently) {
  // NaN != NaN under hash-map equality, but the engine's comparator
  // (CompareDoubles) ranks all NaNs equal; grouping must agree or
  // discovery would claim FDs the validators refute. All NaNs form one
  // class, and -0.0 joins +0.0.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  engine::Schema s;
  s.Add("d", engine::DataType::kDouble);
  engine::Table t(s);
  for (double v : {nan, 0.0, nan, -0.0}) t.AppendRow({Value(v)});
  StrippedPartition p = StrippedPartition::ForColumn(t, 0);
  ASSERT_EQ(p.num_classes(), 2);
  EXPECT_EQ(p.cls(0), (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(p.cls(1), (std::vector<int64_t>{1, 3}));
}

TEST(StrippedPartitionTest, KeyColumnIsEmptyPartition) {
  engine::Table t = IntTable({"id"}, {{1}, {2}, {3}});
  StrippedPartition p = StrippedPartition::ForColumn(t, 0);
  EXPECT_TRUE(p.IsKey());
  EXPECT_EQ(p.Error(), 0);
}

TEST(StrippedPartitionTest, ProductRefines) {
  // a: two classes {0,1,2} {3,4}; b splits the first into {0,1} / {2}.
  engine::Table t =
      IntTable({"a", "b"}, {{1, 5}, {1, 5}, {1, 6}, {2, 7}, {2, 7}});
  StrippedPartition pa = StrippedPartition::ForColumn(t, 0);
  StrippedPartition pb = StrippedPartition::ForColumn(t, 1);
  StrippedPartition pab = pa.Product(pb);
  ASSERT_EQ(pab.num_classes(), 2);
  EXPECT_EQ(pab.cls(0), (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(pab.cls(1), (std::vector<int64_t>{3, 4}));
  EXPECT_EQ(pab.Error(), 2);
  // The product is symmetric.
  StrippedPartition pba = pb.Product(pa);
  ASSERT_EQ(pba.num_classes(), 2);
  EXPECT_EQ(pba.cls(0), pab.cls(0));
  EXPECT_EQ(pba.cls(1), pab.cls(1));
}

TEST(StrippedPartitionTest, ProductWithUniverseIsIdentity) {
  engine::Table t = IntTable({"a"}, {{1}, {1}, {2}, {2}, {3}});
  StrippedPartition pa = StrippedPartition::ForColumn(t, 0);
  StrippedPartition pu = StrippedPartition::Universe(t.num_rows());
  StrippedPartition prod = pa.Product(pu);
  ASSERT_EQ(prod.num_classes(), pa.num_classes());
  for (int i = 0; i < pa.num_classes(); ++i) {
    EXPECT_EQ(prod.cls(i), pa.cls(i));
  }
}

TEST(StrippedPartitionTest, ErrorNeverIncreasesUnderRefinement) {
  engine::Table t = IntTable(
      {"a", "b"}, {{1, 1}, {1, 2}, {1, 2}, {2, 1}, {2, 1}, {2, 1}});
  StrippedPartition pa = StrippedPartition::ForColumn(t, 0);
  StrippedPartition pb = StrippedPartition::ForColumn(t, 1);
  EXPECT_LE(pa.Product(pb).Error(), pa.Error());
  EXPECT_LE(pa.Product(pb).Error(), pb.Error());
}

TEST(PartitionCacheTest, CachesAndReuses) {
  engine::Table t =
      IntTable({"a", "b"}, {{1, 5}, {1, 5}, {1, 6}, {2, 7}, {2, 7}});
  PartitionCache cache(t);
  const StrippedPartition& p1 = cache.Get(AttributeSet({0, 1}));
  EXPECT_EQ(p1.num_classes(), 2);
  // {a, b} plus its chain {a} and {b}.
  const int64_t after_first = cache.computed();
  EXPECT_GE(after_first, 3);
  cache.Get(AttributeSet({0, 1}));
  cache.Get(AttributeSet({0}));
  EXPECT_EQ(cache.computed(), after_first);  // all hits
}

TEST(PartitionCacheTest, EvictLevelDropsOnlyThatLevel) {
  engine::Table t =
      IntTable({"a", "b", "c"},
               {{1, 5, 0}, {1, 5, 0}, {1, 6, 1}, {2, 7, 1}, {2, 7, 0}});
  PartitionCache cache(t);
  cache.Get(AttributeSet({0, 1}));
  cache.Get(AttributeSet({0}));
  const int64_t before = cache.size();
  cache.EvictLevel(2);
  EXPECT_EQ(cache.size(), before - 1);  // only {a, b} dropped
  // Single-column partitions are never evicted (they seed every product).
  cache.EvictLevel(1);
  EXPECT_EQ(cache.size(), before - 1);
  // Recomputing the evicted set is a fresh miss.
  const int64_t computed_before = cache.computed();
  cache.Get(AttributeSet({0, 1}));
  EXPECT_EQ(cache.computed(), computed_before + 1);
}

TEST(PartitionCacheTest, PrewarmMatchesOnDemandComputation) {
  engine::Table t = IntTable({"a", "b", "c"}, {{1, 10, 5},
                                               {1, 10, 5},
                                               {1, 20, 5},
                                               {2, 20, 6},
                                               {2, 20, 6},
                                               {2, 10, 6}});
  // On-demand reference.
  PartitionCache lazy(t);
  const std::vector<AttributeSet> queries = {
      AttributeSet({0, 1}), AttributeSet({0, 2}), AttributeSet({0, 1, 2}),
      AttributeSet({1})};
  std::vector<int64_t> lazy_errors;
  for (const auto& q : queries) lazy_errors.push_back(lazy.Get(q).Error());

  // Prewarmed (parallel) cache: same partitions, same computed() count, and
  // the Gets afterwards are pure lookups (computed() stays put).
  common::ThreadPool pool(4);
  PartitionCache warmed(t);
  warmed.Prewarm(queries, &pool);
  EXPECT_EQ(warmed.computed(), lazy.computed());
  const int64_t after_prewarm = warmed.computed();
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(warmed.Get(queries[i]).Error(), lazy_errors[i]);
    EXPECT_EQ(warmed.Get(queries[i]).num_classes(),
              lazy.Get(queries[i]).num_classes());
  }
  EXPECT_EQ(warmed.computed(), after_prewarm);

  // Re-prewarming the same sets is a no-op.
  warmed.Prewarm(queries, &pool);
  EXPECT_EQ(warmed.computed(), after_prewarm);

  // Serial prewarm (no pool) behaves identically.
  PartitionCache serial(t);
  serial.Prewarm(queries, nullptr);
  EXPECT_EQ(serial.computed(), after_prewarm);
}

}  // namespace
}  // namespace discovery
}  // namespace od
