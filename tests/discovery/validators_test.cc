// Tests for the split (constancy / FD) and swap (order-compatibility)
// validators over stripped partitions.

#include <gtest/gtest.h>

#include <limits>

#include "discovery/stripped_partition.h"
#include "discovery/validators.h"
#include "engine/table.h"
#include "test_table_util.h"

namespace od {
namespace discovery {
namespace {

TEST(SplitValidatorTest, HoldsWhenAttrConstantPerClass) {
  // b is a function of a.
  engine::Table t = IntTable({"a", "b"}, {{1, 5}, {1, 5}, {2, 7}, {2, 7}});
  PartitionCache cache(t);
  EXPECT_TRUE(SplitCandidateHolds(cache.Get(AttributeSet({0})),
                                  cache.Get(AttributeSet({0, 1}))));
}

TEST(SplitValidatorTest, FailsOnSplit) {
  // Rows 0 and 1 agree on a but differ on b: a split of {a}: [] ↦ b.
  engine::Table t = IntTable({"a", "b"}, {{1, 5}, {1, 6}, {2, 7}, {2, 7}});
  PartitionCache cache(t);
  EXPECT_FALSE(SplitCandidateHolds(cache.Get(AttributeSet({0})),
                                   cache.Get(AttributeSet({0, 1}))));
}

TEST(SplitValidatorTest, EmptyContextDetectsConstantColumn) {
  engine::Table t = IntTable({"a", "k"}, {{1, 9}, {2, 9}, {3, 9}});
  PartitionCache cache(t);
  EXPECT_TRUE(SplitCandidateHolds(cache.Get(AttributeSet()),
                                  cache.Get(AttributeSet({1}))));
  EXPECT_FALSE(SplitCandidateHolds(cache.Get(AttributeSet()),
                                   cache.Get(AttributeSet({0}))));
}

TEST(SwapValidatorTest, DetectsSwapWithWitness) {
  // Rows 1 and 2: a increases 1 → 2 while b decreases 6 → 5.
  engine::Table t = IntTable({"a", "b"}, {{0, 0}, {1, 6}, {2, 5}});
  StrippedPartition ctx = StrippedPartition::Universe(t.num_rows());
  auto w = FindSwap(t, ctx, 0, 1);
  ASSERT_TRUE(w.has_value());
  // The witness pair increases on a and decreases on b.
  EXPECT_LT(t.col(0).Int(w->s), t.col(0).Int(w->t));
  EXPECT_GT(t.col(1).Int(w->s), t.col(1).Int(w->t));
  EXPECT_FALSE(SwapCandidateHolds(t, ctx, 0, 1));
  // Symmetric: reading the pair the other way swaps b against a.
  EXPECT_FALSE(SwapCandidateHolds(t, ctx, 1, 0));
}

TEST(SwapValidatorTest, HoldsWhenMonotone) {
  engine::Table t = IntTable({"a", "b"}, {{1, 10}, {2, 20}, {3, 30}});
  StrippedPartition ctx = StrippedPartition::Universe(t.num_rows());
  EXPECT_TRUE(SwapCandidateHolds(t, ctx, 0, 1));
}

TEST(SwapValidatorTest, TiesOnAAllowAnyB) {
  // Order compatibility constrains strict increases of a only: rows tied on
  // a may carry b in any order.
  engine::Table t = IntTable({"a", "b"}, {{1, 20}, {1, 10}, {2, 30}});
  StrippedPartition ctx = StrippedPartition::Universe(t.num_rows());
  EXPECT_TRUE(SwapCandidateHolds(t, ctx, 0, 1));
  // A strict increase of a that drops below an earlier group's b is still a
  // swap: (a=1, b=20) against the new (a=3, b=15).
  t.AppendRow({Value(3), Value(15)});
  StrippedPartition ctx2 = StrippedPartition::Universe(t.num_rows());
  auto w = FindSwap(t, ctx2, 0, 1);
  ASSERT_TRUE(w.has_value());
  EXPECT_LT(t.col(0).Int(w->s), t.col(0).Int(w->t));
  EXPECT_GT(t.col(1).Int(w->s), t.col(1).Int(w->t));
}

TEST(SwapValidatorTest, ConstantSideNeverSwaps) {
  engine::Table t = IntTable({"a", "k"}, {{3, 9}, {1, 9}, {2, 9}});
  StrippedPartition ctx = StrippedPartition::Universe(t.num_rows());
  EXPECT_TRUE(SwapCandidateHolds(t, ctx, 0, 1));
  EXPECT_TRUE(SwapCandidateHolds(t, ctx, 1, 0));
}

TEST(SwapValidatorTest, ContextClassesIsolateSwaps) {
  // Within c-classes, a and b move together; across classes they would
  // swap, but cross-class pairs are not witnesses.
  engine::Table t = IntTable(
      {"c", "a", "b"},
      {{0, 1, 10}, {0, 2, 20}, {1, 100, 1}, {1, 200, 2}});
  PartitionCache cache(t);
  EXPECT_TRUE(SwapCandidateHolds(t, cache.Get(AttributeSet({0})), 1, 2));
  // With the empty context the cross-class swap is visible:
  // (a=2, b=20) vs (a=100, b=1).
  EXPECT_FALSE(
      SwapCandidateHolds(t, StrippedPartition::Universe(t.num_rows()), 1, 2));
}

TEST(SwapValidatorTest, KeyContextHasNothingToCheck) {
  engine::Table t = IntTable({"id", "a", "b"},
                             {{1, 5, 9}, {2, 6, 8}, {3, 7, 7}});
  PartitionCache cache(t);
  const StrippedPartition& ctx = cache.Get(AttributeSet({0}));
  EXPECT_TRUE(ctx.IsKey());
  EXPECT_TRUE(SwapCandidateHolds(t, ctx, 1, 2));
}

TEST(SwapValidatorTest, NanRowsDoNotMaskSwaps) {
  // Regression: with IEEE `<` semantics, NaN "ties" with every value, so
  // the per-class sort comparator lost strict-weak ordering and the
  // swap between (a=1, b=99) and (a=3, b=97) went undetected in one scan
  // direction. Under the total order (CompareDoubles) NaNs group after the
  // ordered values and the swap is found symmetrically.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  engine::Schema s;
  s.Add("a", engine::DataType::kDouble);
  s.Add("b", engine::DataType::kDouble);
  engine::Table t(s);
  const double a_vals[] = {nan, 1.0, nan, 3.0, nan, 5.0};
  const double b_vals[] = {100.0, 99.0, 98.0, 97.0, 96.0, 95.0};
  for (size_t i = 0; i < 6; ++i) {
    t.AppendRow({Value(a_vals[i]), Value(b_vals[i])});
  }
  const StrippedPartition ctx = StrippedPartition::Universe(t.num_rows());
  auto fwd = FindSwap(t, ctx, 0, 1);
  auto bwd = FindSwap(t, ctx, 1, 0);
  EXPECT_TRUE(fwd.has_value());
  EXPECT_TRUE(bwd.has_value());
  // The NaN rows themselves also swap against ordered rows on b (NaN sorts
  // last on a while b descends), but any witness must be a genuine strict
  // increase/decrease pair under the total order.
  if (fwd) {
    const engine::Column& ca = t.col(0);
    const engine::Column& cb = t.col(1);
    EXPECT_GT(ca.Compare(fwd->t, ca, fwd->s), 0);
    EXPECT_LT(cb.Compare(fwd->t, cb, fwd->s), 0);
  }
}

TEST(SwapValidatorTest, AllNanColumnIsConstantNotSwapped) {
  // All-NaN a: one equivalence class on a, no strict increase anywhere —
  // never a swap witness source.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  engine::Schema s;
  s.Add("a", engine::DataType::kDouble);
  s.Add("b", engine::DataType::kDouble);
  engine::Table t(s);
  for (double b : {3.0, 1.0, 2.0}) t.AppendRow({Value(nan), Value(b)});
  const StrippedPartition ctx = StrippedPartition::Universe(t.num_rows());
  EXPECT_FALSE(FindSwap(t, ctx, 0, 1).has_value());
  EXPECT_FALSE(FindSwap(t, ctx, 1, 0).has_value());
}

}  // namespace
}  // namespace discovery
}  // namespace od
