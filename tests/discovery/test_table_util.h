#ifndef OD_TESTS_DISCOVERY_TEST_TABLE_UTIL_H_
#define OD_TESTS_DISCOVERY_TEST_TABLE_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/table.h"

namespace od {
namespace discovery {

/// Builds an all-int64 engine table from row-major literals — the shared
/// fixture builder for the discovery test suites.
inline engine::Table IntTable(const std::vector<std::string>& names,
                              const std::vector<std::vector<int64_t>>& rows) {
  engine::Schema s;
  for (const auto& n : names) s.Add(n, engine::DataType::kInt64);
  engine::Table t(s);
  for (const auto& row : rows) {
    std::vector<Value> vals;
    for (int64_t v : row) vals.emplace_back(v);
    t.AppendRow(vals);
  }
  return t;
}

}  // namespace discovery
}  // namespace od

#endif  // OD_TESTS_DISCOVERY_TEST_TABLE_UTIL_H_
