// Regression suite for TheorySnapshot extraction: snapshots are true
// copy-on-write value captures (mutating the source theory never changes a
// previously extracted snapshot), same-epoch snapshots compare equal (and
// are in fact the same cached object), and `Theory(const TheorySnapshot&)`
// restores a replica indistinguishable from the source at that epoch —
// including the never-reused id sequence.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fd/fd_set.h"
#include "theory/theory.h"

namespace od {
namespace theory {
namespace {

AttributeList L(std::initializer_list<AttributeId> attrs) {
  AttributeList list;
  for (AttributeId a : attrs) list = list.Append(a);
  return list;
}

TEST(TheorySnapshotTest, SameEpochSnapshotsAreEqualAndShared) {
  Theory th;
  th.Add(L({0}), L({1}));
  th.Add(L({1, 2}), L({3}));

  auto a = th.Snapshot();
  auto b = th.Snapshot();
  EXPECT_EQ(a.get(), b.get()) << "per-epoch snapshot cache should dedupe";
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(a->epoch, th.epoch());
  EXPECT_EQ(a->deps.ods(), th.deps().ods());
  EXPECT_EQ(a->ids, th.ids());
}

TEST(TheorySnapshotTest, SnapshotIsUnaffectedByLaterMutations) {
  Theory th;
  const ConstraintId first = th.Add(L({0}), L({1}));
  th.Add(L({1}), L({2}));

  auto snap = th.Snapshot();
  const TheorySnapshot before = *snap;  // deep value copy for comparison

  // Churn the source: add, remove, re-add.
  th.Add(L({2}), L({0, 3}));
  th.Remove(first);
  th.Add(L({0}), L({1}));

  EXPECT_EQ(*snap, before) << "snapshot aliased mutable theory state";
  EXPECT_NE(snap->epoch, th.epoch());
  EXPECT_NE(snap->deps.ods(), th.deps().ods());

  // A fresh snapshot reflects the new state and is a distinct object.
  auto after = th.Snapshot();
  EXPECT_NE(after.get(), snap.get());
  EXPECT_NE(*after, *snap);
  EXPECT_EQ(after->epoch, th.epoch());
}

TEST(TheorySnapshotTest, RestoredReplicaMatchesSourceState) {
  DependencySet seed;
  seed.Add(OrderDependency(L({0}), L({1})));
  seed.Add(OrderDependency(L({1}), L({2, 3})));
  Theory th(seed);
  th.Add(L({3}), L({4}));
  th.Remove(th.ids().front());

  auto snap = th.Snapshot();
  Theory replica(*snap);

  EXPECT_EQ(replica.epoch(), th.epoch());
  EXPECT_EQ(replica.deps().ods(), th.deps().ods());
  EXPECT_EQ(replica.fd_projection(), th.fd_projection());
  EXPECT_EQ(replica.ids(), th.ids());
  EXPECT_EQ(replica.attributes(), th.attributes());
  // The replica's own snapshot round-trips to the original.
  EXPECT_EQ(*replica.Snapshot(), *snap);
}

TEST(TheorySnapshotTest, RestoredReplicaContinuesIdAndEpochSequence) {
  Theory th;
  th.Add(L({0}), L({1}));
  th.Add(L({1}), L({2}));
  Theory replica(*th.Snapshot());

  // Identical next mutation on both sides mints the same id and epoch.
  const ConstraintId id_src = th.Add(L({2}), L({0}));
  const ConstraintId id_rep = replica.Add(L({2}), L({0}));
  EXPECT_EQ(id_rep, id_src);
  EXPECT_EQ(replica.epoch(), th.epoch());
  EXPECT_EQ(*replica.Snapshot(), *th.Snapshot());
}

TEST(TheorySnapshotTest, TwoTheoriesSameScriptSnapshotEqual) {
  auto run = [] {
    Theory th;
    ConstraintId a = th.Add(L({0}), L({1}));
    th.Add(L({1, 2}), L({3}));
    th.Remove(a);
    th.Add(L({3}), L({0}));
    return th.Snapshot();
  };
  auto s1 = run();
  auto s2 = run();
  EXPECT_EQ(*s1, *s2);
}

TEST(TheorySnapshotTest, AttributeUniverseShrinksButSnapshotKeepsIt) {
  Theory th;
  const ConstraintId only = th.Add(L({5}), L({7}));
  auto snap = th.Snapshot();
  th.Remove(only);
  EXPECT_TRUE(th.attributes().IsEmpty());
  EXPECT_TRUE(snap->attributes.Contains(5));
  EXPECT_TRUE(snap->attributes.Contains(7));
}

}  // namespace
}  // namespace theory
}  // namespace od
