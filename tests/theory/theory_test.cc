#include "theory/theory.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/parser.h"
#include "fd/fd_set.h"

namespace od {
namespace theory {
namespace {

DependencySet Parse(NameTable* names, const std::string& text) {
  Parser parser(names);
  auto set = parser.ParseSet(text);
  EXPECT_TRUE(set.has_value()) << parser.error();
  return *set;
}

TEST(TheoryTest, EpochAdvancesOncePerMutation) {
  Theory th;
  EXPECT_EQ(th.epoch(), 0u);
  const ConstraintId c0 = th.Add(AttributeList({0}), AttributeList({1}));
  EXPECT_EQ(th.epoch(), 1u);
  const ConstraintId c1 = th.Add(AttributeList({1}), AttributeList({2}));
  EXPECT_EQ(th.epoch(), 2u);
  EXPECT_NE(c0, c1);
  EXPECT_TRUE(th.Remove(c0));
  EXPECT_EQ(th.epoch(), 3u);
  // Removing a dead id is a no-op: no epoch advance.
  EXPECT_FALSE(th.Remove(c0));
  EXPECT_EQ(th.epoch(), 3u);
}

TEST(TheoryTest, SeededFromDependencySet) {
  NameTable names;
  DependencySet m = Parse(&names, "[a] -> [b]; [b] -> [c]");
  Theory th(m);
  EXPECT_EQ(th.Size(), 2);
  EXPECT_EQ(th.epoch(), 2u);
  EXPECT_TRUE(th.Contains(m[0]));
  EXPECT_TRUE(th.Contains(m[1]));
  EXPECT_EQ(th.deps().ods(), m.ods());
}

TEST(TheoryTest, IdsNeverReused) {
  Theory th;
  const OrderDependency dep(AttributeList({0}), AttributeList({1}));
  const ConstraintId first = th.Add(dep);
  th.Remove(first);
  const ConstraintId second = th.Add(dep);
  EXPECT_NE(first, second);
  EXPECT_FALSE(th.Find(first).has_value());
  EXPECT_EQ(*th.Find(second), dep);
}

TEST(TheoryTest, IncrementalFdProjectionMatchesRecomputation) {
  NameTable names;
  Theory th(Parse(&names, "[a] -> [b, c]; [c] -> [a]; [] -> [d]"));
  EXPECT_EQ(th.fd_projection(), fd::FdProjection(th.deps()));
  // Churn: drop the middle constraint, add a new one — the projection
  // tracks, index-aligned, without a rebuild.
  const ConstraintId middle = th.ids()[1];
  th.Remove(middle);
  EXPECT_EQ(th.fd_projection(), fd::FdProjection(th.deps()));
  th.Add(AttributeList({3}), AttributeList({0, 2}));
  EXPECT_EQ(th.fd_projection(), fd::FdProjection(th.deps()));
  // Index alignment invariant: ids/deps/fds stay parallel.
  ASSERT_EQ(static_cast<int>(th.ids().size()), th.deps().Size());
  ASSERT_EQ(th.fd_projection().Size(), th.deps().Size());
  for (int i = 0; i < th.deps().Size(); ++i) {
    EXPECT_EQ(th.fd_projection().fds()[i].lhs, th.deps()[i].lhs.ToSet());
    EXPECT_EQ(th.fd_projection().fds()[i].rhs, th.deps()[i].rhs.ToSet());
  }
}

TEST(TheoryTest, AttributesShrinkWhenLastMentionRemoved) {
  Theory th;
  const ConstraintId c0 = th.Add(AttributeList({0}), AttributeList({1}));
  const ConstraintId c1 = th.Add(AttributeList({1}), AttributeList({2}));
  EXPECT_EQ(th.attributes(), AttributeSet({0, 1, 2}));
  th.Remove(c1);
  // Attribute 2 had one mention; 1 is still held by c0.
  EXPECT_EQ(th.attributes(), AttributeSet({0, 1}));
  th.Remove(c0);
  EXPECT_TRUE(th.attributes().IsEmpty());
  EXPECT_EQ(th.attributes(), th.deps().Attributes());
}

TEST(TheoryTest, RemoveOneMatchesByValue) {
  Theory th;
  const OrderDependency dep(AttributeList({0}), AttributeList({1}));
  const ConstraintId first = th.Add(dep);
  const ConstraintId second = th.Add(dep);  // duplicate, distinct id
  EXPECT_EQ(th.RemoveOne(dep), first);
  EXPECT_EQ(th.Size(), 1);
  EXPECT_EQ(th.ids()[0], second);
  EXPECT_EQ(th.RemoveOne(dep), second);
  EXPECT_EQ(th.RemoveOne(dep), kNoConstraint);
}

TEST(TheoryTest, ListenersSeeEveryChangeInOrder) {
  Theory th;
  std::vector<ChangeEvent> seen;
  const auto token = th.Subscribe(
      [&seen](const ChangeEvent& e) { seen.push_back(e); });
  const OrderDependency dep(AttributeList({0}), AttributeList({1}));
  const ConstraintId id = th.Add(dep);
  th.Remove(id);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].kind, ChangeEvent::Kind::kAdd);
  EXPECT_EQ(seen[0].id, id);
  EXPECT_EQ(seen[0].od, dep);
  EXPECT_EQ(seen[0].epoch, 1u);
  EXPECT_EQ(seen[1].kind, ChangeEvent::Kind::kRemove);
  EXPECT_EQ(seen[1].id, id);
  EXPECT_EQ(seen[1].od, dep);
  EXPECT_EQ(seen[1].epoch, 2u);
  // After unsubscribing the feed goes quiet.
  th.Unsubscribe(token);
  th.Add(dep);
  EXPECT_EQ(seen.size(), 2u);
}

TEST(TheoryTest, ListenerRunsAfterStateIsUpdated) {
  Theory th;
  const OrderDependency dep(AttributeList({0}), AttributeList({1}));
  bool checked = false;
  th.Subscribe([&](const ChangeEvent& e) {
    // The event's epoch equals the theory's, and the catalog already
    // reflects the change when listeners run.
    EXPECT_EQ(e.epoch, th.epoch());
    if (e.kind == ChangeEvent::Kind::kAdd) {
      EXPECT_TRUE(th.Contains(e.od));
    } else {
      EXPECT_FALSE(th.Contains(e.od));
    }
    checked = true;
  });
  const ConstraintId id = th.Add(dep);
  th.Remove(id);
  EXPECT_TRUE(checked);
}

TEST(TheoryTest, IndexOfTracksRemovals) {
  Theory th;
  const ConstraintId a = th.Add(AttributeList({0}), AttributeList({1}));
  const ConstraintId b = th.Add(AttributeList({1}), AttributeList({2}));
  const ConstraintId c = th.Add(AttributeList({2}), AttributeList({3}));
  EXPECT_EQ(*th.IndexOf(b), 1);
  th.Remove(a);
  EXPECT_EQ(*th.IndexOf(b), 0);
  EXPECT_EQ(*th.IndexOf(c), 1);
  EXPECT_FALSE(th.IndexOf(a).has_value());
}

}  // namespace
}  // namespace theory
}  // namespace od
