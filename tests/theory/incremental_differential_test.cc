// Differential suite for incremental re-proving: a long-lived Prover on a
// mutating Theory must answer EXACTLY like a fresh Prover built from
// scratch at the same epoch — bit-identical booleans for every query, after
// every mutation, across randomized add/remove scripts — both serially and
// with the batch API fanned across a thread pool. This is the soundness
// gate for monotonicity-aware memo retention (support sets for positives,
// countermodel certificates for negatives): any unsound retention shows up
// as a divergence from the from-scratch prover.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "armstrong/generator.h"
#include "common/thread_pool.h"
#include "core/witness.h"
#include "discovery/discovery.h"
#include "prover/closure.h"
#include "prover/prover.h"
#include "theory/theory.h"

namespace od {
namespace theory {
namespace {

OrderDependency RandomOd(std::mt19937& rng, int num_attrs) {
  std::uniform_int_distribution<int> attr(0, num_attrs - 1);
  std::uniform_int_distribution<int> len(0, 2);
  auto random_list = [&](int min_len) {
    AttributeList list;
    const int k = std::max(min_len, len(rng));
    for (int i = 0; i < k; ++i) list = list.Append(attr(rng));
    return list.RemoveDuplicates();
  };
  // Avoid the trivial [] ↦ [] (allowed, but uninteresting churn).
  OrderDependency dep(random_list(0), random_list(1));
  return dep;
}

/// One randomized add/remove script. Every mutation is one "epoch"; after
/// each, the live prover's answers for a random query batch are compared
/// bit-for-bit against a prover built from scratch on a snapshot of the
/// catalog. Returns the number of epochs executed.
int RunScript(uint32_t seed, int num_attrs, int epochs, int queries_per_epoch,
              common::ThreadPool* pool, const DependencySet& initial) {
  std::mt19937 rng(seed);
  auto th = std::make_shared<Theory>(initial);
  prover::Prover live(th);

  // Warm the live memo so retention (not cold misses) is what's exercised.
  std::vector<OrderDependency> warmup;
  for (int i = 0; i < queries_per_epoch; ++i) {
    warmup.push_back(RandomOd(rng, num_attrs));
  }
  live.ProveAll(warmup, pool);

  std::bernoulli_distribution add_coin(0.55);
  int executed = 0;
  for (int e = 0; e < epochs; ++e) {
    const uint64_t epoch_before = th->epoch();
    if (th->IsEmpty() || add_coin(rng)) {
      th->Add(RandomOd(rng, num_attrs));
    } else {
      std::uniform_int_distribution<int> pick(0, th->Size() - 1);
      th->Remove(th->ids()[static_cast<size_t>(pick(rng))]);
    }
    EXPECT_EQ(th->epoch(), epoch_before + 1);
    ++executed;

    std::vector<OrderDependency> batch;
    batch.reserve(queries_per_epoch);
    for (int i = 0; i < queries_per_epoch; ++i) {
      batch.push_back(RandomOd(rng, num_attrs));
    }

    // The from-scratch reference at this exact epoch.
    prover::Prover fresh(th->deps());
    const std::vector<bool> expected = fresh.ProveAll(batch);
    const std::vector<bool> actual = live.ProveAll(batch, pool);
    if (actual != expected) {
      ADD_FAILURE() << "divergence at epoch " << th->epoch() << " (seed "
                    << seed << ") over ℳ:\n"
                    << th->deps().ToString();
      return executed;
    }

    // Counterexamples must be genuine for the CURRENT catalog even when
    // they are materialized from entries retained across mutations.
    for (size_t i = 0; i < batch.size(); ++i) {
      if (expected[i]) continue;
      auto cex = live.Counterexample(batch[i]);
      if (!cex.has_value()) {
        ADD_FAILURE() << "missing counterexample for " << batch[i].ToString();
        return executed;
      }
      EXPECT_TRUE(Satisfies(*cex, th->deps()))
          << "stale countermodel for " << batch[i].ToString() << " at epoch "
          << th->epoch() << " (seed " << seed << ")";
      EXPECT_FALSE(Satisfies(*cex, batch[i]));
      break;  // one validity probe per epoch keeps the suite fast
    }

    // Derived summaries agree too.
    if (e % 16 == 0) {
      EXPECT_EQ(live.Constants(), fresh.Constants());
    }
  }
  return executed;
}

TEST(IncrementalDifferentialTest, SerialRandomScripts) {
  int epochs = 0;
  for (uint32_t seed = 1; seed <= 12; ++seed) {
    std::mt19937 rng(seed * 977);
    DependencySet initial;
    for (int i = 0; i < 4; ++i) initial.Add(RandomOd(rng, 5));
    epochs += RunScript(seed, /*num_attrs=*/5, /*epochs=*/48,
                        /*queries_per_epoch=*/24, /*pool=*/nullptr, initial);
  }
  // The acceptance bar: 1k+ randomized epochs, serially.
  EXPECT_GE(epochs, 500);
}

TEST(IncrementalDifferentialTest, ThreadedRandomScripts) {
  common::ThreadPool pool(4);
  int epochs = 0;
  for (uint32_t seed = 101; seed <= 112; ++seed) {
    std::mt19937 rng(seed * 977);
    DependencySet initial;
    for (int i = 0; i < 4; ++i) initial.Add(RandomOd(rng, 5));
    epochs += RunScript(seed, /*num_attrs=*/5, /*epochs=*/48,
                        /*queries_per_epoch=*/24, &pool, initial);
  }
  EXPECT_GE(epochs, 500);
}

TEST(IncrementalDifferentialTest, ArmstrongMinedTheoriesUnderChurn) {
  // Start the scripts from realistic catalogs: mine the prover-equivalent
  // minimal cover of an Armstrong table for a random theory, then churn it.
  for (uint32_t seed = 201; seed <= 204; ++seed) {
    std::mt19937 rng(seed);
    DependencySet planted;
    for (int i = 0; i < 3; ++i) planted.Add(RandomOd(rng, 4));
    const AttributeSet universe = AttributeSet::FirstN(4);
    Relation table = armstrong::BuildArmstrongTable(planted, universe);
    auto mined = discovery::DiscoverODs(discovery::TableFromRelation(table));
    RunScript(seed, /*num_attrs=*/4, /*epochs=*/32, /*queries_per_epoch=*/16,
              /*pool=*/nullptr, mined.ods);
  }
}

TEST(IncrementalDifferentialTest, ExhaustiveSmallUniverseAfterEveryEpoch) {
  // Small enough to compare the ENTIRE bounded query space (every pair of
  // duplicate-free lists of length ≤ 2 over 4 attributes) at every epoch.
  const AttributeSet universe = AttributeSet::FirstN(4);
  std::vector<OrderDependency> all;
  const auto lists = prover::EnumerateLists(universe, 2);
  for (const auto& lhs : lists) {
    for (const auto& rhs : lists) all.emplace_back(lhs, rhs);
  }
  std::mt19937 rng(4242);
  auto th = std::make_shared<Theory>();
  prover::Prover live(th);
  std::bernoulli_distribution add_coin(0.6);
  for (int e = 0; e < 24; ++e) {
    if (th->IsEmpty() || add_coin(rng)) {
      th->Add(RandomOd(rng, 4));
    } else {
      std::uniform_int_distribution<int> pick(0, th->Size() - 1);
      th->Remove(th->ids()[static_cast<size_t>(pick(rng))]);
    }
    prover::Prover fresh(th->deps());
    ASSERT_EQ(live.ProveAll(all), fresh.ProveAll(all))
        << "divergence at epoch " << th->epoch() << " over ℳ:\n"
        << th->deps().ToString();
  }
}

}  // namespace
}  // namespace theory
}  // namespace od
