#include <gtest/gtest.h>

#include "core/relation.h"
#include "core/witness.h"
#include "engine/ops.h"
#include "prover/prover.h"
#include "warehouse/date_dim.h"
#include "warehouse/star_schema.h"
#include "warehouse/tax_schedule.h"

namespace od {
namespace warehouse {
namespace {

TEST(CivilDateTest, KnownDates) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
  int y, m, d;
  CivilFromDays(11017, &y, &m, &d);
  EXPECT_EQ(y, 2000);
  EXPECT_EQ(m, 3);
  EXPECT_EQ(d, 1);
  // 1970-01-01 was a Thursday (Monday = 0 ⟹ 3).
  EXPECT_EQ(WeekdayFromDays(0), 3);
  // 2000-01-01 was a Saturday.
  EXPECT_EQ(WeekdayFromDays(DaysFromCivil(2000, 1, 1)), 5);
}

TEST(CivilDateTest, RoundTripSweep) {
  for (int64_t day = DaysFromCivil(1995, 1, 1);
       day <= DaysFromCivil(2005, 12, 31); day += 17) {
    int y, m, d;
    CivilFromDays(day, &y, &m, &d);
    EXPECT_EQ(DaysFromCivil(y, m, d), day);
    EXPECT_GE(d, 1);
    EXPECT_LE(d, LastDayOfMonth(y, m));
  }
}

TEST(CivilDateTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_TRUE(IsLeapYear(1996));
  EXPECT_FALSE(IsLeapYear(1999));
  EXPECT_EQ(LastDayOfMonth(2000, 2), 29);
  EXPECT_EQ(LastDayOfMonth(1999, 2), 28);
}

// Converts an engine table to a theory Relation for OD checking.
Relation ToRelation(const engine::Table& t) {
  Relation r(t.num_columns());
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    std::vector<Value> row;
    row.reserve(t.num_columns());
    for (int c = 0; c < t.num_columns(); ++c) row.push_back(t.col(c).Get(i));
    r.AddRow(std::move(row));
  }
  return r;
}

TEST(DateDimTest, GenerationBasics) {
  engine::Table dim = GenerateDateDim(2000, 2);
  EXPECT_EQ(dim.num_rows(), 366 + 365);  // 2000 is leap
  const DateDimColumns c;
  EXPECT_EQ(dim.col(c.d_year).Int(0), 2000);
  EXPECT_EQ(dim.col(c.d_moy).Int(0), 1);
  EXPECT_EQ(dim.col(c.d_dom).Int(0), 1);
  EXPECT_EQ(dim.col(c.d_quarter).Int(0), 1);
  EXPECT_EQ(dim.col(c.d_quarter_name).Str(0), "first");
  // Surrogates increase by one per day.
  EXPECT_EQ(dim.col(c.d_date_sk).Int(1) - dim.col(c.d_date_sk).Int(0), 1);
  EXPECT_TRUE(engine::IsSortedBy(dim, {c.d_date_sk}));
}

// Figure 2 / Example 4 empirically: every prescribed OD of the date
// dimension holds on the generated instance.
TEST(DateDimTest, PrescribedOdsHoldOnInstance) {
  engine::Table dim = GenerateDateDim(1999, 3);
  Relation r = ToRelation(dim);
  const DependencySet prescribed = DateDimOds();
  for (const auto& dep : prescribed.ods()) {
    EXPECT_TRUE(Satisfies(r, dep)) << dep.ToString();
  }
  const DependencySet fd_shaped = DateDimFdShapedOds();
  for (const auto& dep : fd_shaped.ods()) {
    EXPECT_TRUE(Satisfies(r, dep)) << dep.ToString();
  }
}

// The Example 1 trap: d_quarter_name is functionally determined by d_moy but
// NOT ordered by it — "first", "fourth", "second", "third" sort
// alphabetically, not by calendar.
TEST(DateDimTest, QuarterNameIsFdButNotOd) {
  engine::Table dim = GenerateDateDim(2001, 1);
  Relation r = ToRelation(dim);
  const DateDimColumns c;
  // FD-shaped OD holds: [d_moy] ↦ [d_moy, d_quarter_name].
  EXPECT_TRUE(Satisfies(
      r, OrderDependency(AttributeList({c.d_moy}),
                         AttributeList({c.d_moy, c.d_quarter_name}))));
  // But the plain OD [d_moy] ↦ [d_quarter_name] is falsified — by a swap.
  auto w = FindViolation(r, OrderDependency(
                                AttributeList({c.d_moy}),
                                AttributeList({c.d_quarter_name})));
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->kind, ViolationKind::kSwap);
}

// Theorem 10 (Path) consequences on the prescribed set: the prover derives
// interleavings of the Figure 2 hierarchy, e.g.
// [d_date] ↦ [d_year, d_quarter, d_moy, d_dom].
TEST(DateDimTest, PathTheoremConsequences) {
  prover::Prover pv(DateDimOds());
  const DateDimColumns c;
  EXPECT_TRUE(pv.Implies(
      AttributeList({c.d_date}),
      AttributeList({c.d_year, c.d_quarter, c.d_moy, c.d_dom})));
  EXPECT_TRUE(pv.Implies(AttributeList({c.d_date_sk}),
                         AttributeList({c.d_year, c.d_quarter})));
  EXPECT_TRUE(pv.Implies(AttributeList({c.d_date}),
                         AttributeList({c.d_year, c.d_woy})));
  // And the ones that must NOT follow:
  EXPECT_FALSE(pv.Implies(AttributeList({c.d_year, c.d_woy}),
                          AttributeList({c.d_date})));
  EXPECT_FALSE(pv.Implies(AttributeList({c.d_moy}),
                          AttributeList({c.d_date})));
}

// ... and those consequences hold on the generated data.
TEST(DateDimTest, DerivedOdsHoldOnInstance) {
  engine::Table dim = GenerateDateDim(2000, 3);
  Relation r = ToRelation(dim);
  const DateDimColumns c;
  EXPECT_TRUE(Satisfies(
      r, OrderDependency(
             AttributeList({c.d_date}),
             AttributeList({c.d_year, c.d_quarter, c.d_moy, c.d_dom}))));
  EXPECT_TRUE(SatisfiesEquivalence(
      r, AttributeList({c.d_year, c.d_quarter, c.d_moy}),
      AttributeList({c.d_year, c.d_moy})));
}

TEST(StarSchemaTest, FactGeneration) {
  engine::Table dim = GenerateDateDim(2000, 2);
  const int64_t first_sk = dim.col(0).Int(0);
  engine::Table fact =
      GenerateStoreSales(5000, first_sk, dim.num_rows(), 100, 12, 7);
  EXPECT_EQ(fact.num_rows(), 5000);
  const StoreSalesColumns f;
  for (int64_t i = 0; i < fact.num_rows(); i += 97) {
    const int64_t sk = fact.col(f.ss_sold_date_sk).Int(i);
    EXPECT_GE(sk, first_sk);
    EXPECT_LT(sk, first_sk + dim.num_rows());
    EXPECT_GE(fact.col(f.ss_store_sk).Int(i), 1);
    EXPECT_LE(fact.col(f.ss_store_sk).Int(i), 12);
    EXPECT_NEAR(fact.col(f.ss_net_paid).Double(i),
                fact.col(f.ss_quantity).Int(i) *
                    fact.col(f.ss_sales_price).Double(i),
                1e-9);
  }
  EXPECT_EQ(GenerateItems(100, 1).num_rows(), 100);
  EXPECT_EQ(GenerateStores(12, 1).num_rows(), 12);
}

TEST(TaxScheduleTest, Example5OdsHold) {
  engine::Table taxes = GenerateTaxTable(2000, 400000, 11);
  Relation r = ToRelation(taxes);
  const DependencySet tax_ods = TaxOds();
  for (const auto& dep : tax_ods.ods()) {
    EXPECT_TRUE(Satisfies(r, dep)) << dep.ToString();
  }
  // Union consequence (Example 5): [income] ↦ [bracket, tax].
  const TaxColumns c;
  EXPECT_TRUE(Satisfies(r, OrderDependency(
                               AttributeList({c.income}),
                               AttributeList({c.bracket, c.tax}))));
  prover::Prover pv(TaxOds());
  EXPECT_TRUE(pv.Implies(AttributeList({c.income}),
                         AttributeList({c.bracket, c.tax})));
}

}  // namespace
}  // namespace warehouse
}  // namespace od
