#include "axioms/theorems.h"

#include <gtest/gtest.h>

#include "axioms/system.h"
#include "core/witness.h"
#include "prover/prover.h"

namespace od {
namespace axioms {
namespace {

// Shared list fixtures. Attribute ids 0..5 ~ A..F.
const AttributeList kA({0});
const AttributeList kB({1});
const AttributeList kC({2});
const AttributeList kAB({0, 1});
const AttributeList kBA({1, 0});
const AttributeList kCD({2, 3});
const AttributeList kE({4});
const AttributeList kEmpty;

void ExpectChecks(const Proof& proof) {
  std::string error;
  EXPECT_TRUE(CheckProofSemantically(proof, &error))
      << error << "\n"
      << proof.ToString();
}

TEST(TheoremsTest, UnionDerivationChecks) {
  Proof p = Union(kA, kB, kC);
  EXPECT_EQ(p.Conclusion(),
            OrderDependency(kA, kB.Concat(kC)));  // A ↦ BC
  ExpectChecks(p);
}

TEST(TheoremsTest, UnionWithLists) {
  Proof p = Union(kAB, kCD, kE);
  EXPECT_EQ(p.Conclusion(), OrderDependency(kAB, kCD.Concat(kE)));
  ExpectChecks(p);
}

TEST(TheoremsTest, AugmentationDerivationChecks) {
  Proof p = Augmentation(kA, kB, kCD);
  EXPECT_EQ(p.Conclusion(), OrderDependency(kA.Concat(kCD), kB));
  ExpectChecks(p);
}

TEST(TheoremsTest, ShiftDerivationChecks) {
  // V ↔ W, X ↦ Y ⊢ VX ↦ WY with V=[A], W=[B], X=[C], Y=[E].
  Proof p = Shift(kA, kB, kC, kE);
  EXPECT_EQ(p.Conclusion(), OrderDependency(kA.Concat(kC), kB.Concat(kE)));
  ExpectChecks(p);
}

TEST(TheoremsTest, ShiftUsesOnlyAxioms) {
  Proof p = Shift(kA, kB, kC, kE);
  for (const auto& step : p.steps()) {
    EXPECT_TRUE(step.rule == Rule::kGiven || IsAxiom(step.rule))
        << RuleName(step.rule);
  }
}

TEST(TheoremsTest, DecompositionDerivationChecks) {
  Proof p = Decomposition(kA, kB, kCD);
  EXPECT_EQ(p.Conclusion(), OrderDependency(kA, kB));
  ExpectChecks(p);
}

TEST(TheoremsTest, ReplaceDerivationChecks) {
  Proof p = Replace(kC, kA, kB, kE);  // A ↔ B ⊢ CAE ↔ CBE
  auto conclusions = p.Conclusions();
  ASSERT_EQ(conclusions.size(), 2u);
  EXPECT_EQ(conclusions[0],
            OrderDependency(kC.Concat(kA).Concat(kE),
                            kC.Concat(kB).Concat(kE)));
  ExpectChecks(p);
}

TEST(TheoremsTest, EliminateDerivationChecks) {
  // month ↦ quarter: [year, month, quarter] ↔ [year, month].
  Proof p = Eliminate(kA, kB, kC, kEmpty);
  auto conclusions = p.Conclusions();
  ASSERT_EQ(conclusions.size(), 2u);
  EXPECT_EQ(conclusions[0],
            OrderDependency(AttributeList({0, 1, 2}), AttributeList({0, 1})));
  ExpectChecks(p);
}

TEST(TheoremsTest, LeftEliminateDerivationChecks) {
  // The Example 1 rewrite: month ↦ quarter makes
  // [year, quarter, month] ↔ [year, month].
  Proof p = LeftEliminate(kA, kC, kB, kEmpty);  // Z=[A], Y=[C], X=[B]
  auto conclusions = p.Conclusions();
  ASSERT_EQ(conclusions.size(), 2u);
  EXPECT_EQ(conclusions[0],
            OrderDependency(AttributeList({0, 2, 1}), AttributeList({0, 1})));
  ExpectChecks(p);
}

TEST(TheoremsTest, DropDerivationChecks) {
  Proof p = Drop(kA, kA, kB, kC);  // A ↦ ABC, A ↔ A ⊢ A ↦ AC
  EXPECT_EQ(p.Conclusion(), OrderDependency(kA, kA.Concat(kC)));
  ExpectChecks(p);
}

TEST(TheoremsTest, DropWithDistinctHead) {
  Proof p = Drop(kA, kB, kC, kE);  // A ↦ BCE, A ↔ B ⊢ A ↦ BE
  EXPECT_EQ(p.Conclusion(), OrderDependency(kA, kB.Concat(kE)));
  ExpectChecks(p);
}

TEST(TheoremsTest, PathDerivationChecks) {
  // X ↦ VT, V ↔ VAB ⊢ X ↦ VAT. Example 4 shape: a date column X with
  // X ↦ [year, week] and [year] ↔ [year, month] gives
  // X ↦ [year, month, week].
  const AttributeList x({5});
  const AttributeList v({0});   // year
  const AttributeList a({1});   // month
  const AttributeList b({2});   // day
  const AttributeList t({3});   // week
  Proof p = Path(x, v, a, b, t);
  EXPECT_EQ(p.Conclusion(),
            OrderDependency(x, AttributeList({0, 1, 3})));
  ExpectChecks(p);
}

TEST(TheoremsTest, PartitionDerivationChecks) {
  Proof p = Partition(kC, kAB, kBA);
  auto conclusions = p.Conclusions();
  ASSERT_EQ(conclusions.size(), 2u);
  EXPECT_EQ(conclusions[0], OrderDependency(kAB, kBA));
  EXPECT_EQ(conclusions[1], OrderDependency(kBA, kAB));
  ExpectChecks(p);
}

TEST(TheoremsTest, DownwardClosureDerivationChecks) {
  Proof p = DownwardClosure(kA, kB, kC);  // A ~ BC ⊢ A ~ B
  auto conclusions = p.Conclusions();
  ASSERT_EQ(conclusions.size(), 2u);
  EXPECT_EQ(conclusions[0], OrderDependency(kAB, kBA));
  ExpectChecks(p);
}

TEST(TheoremsTest, PermutationDerivationChecks) {
  // X ↦ Y ⊢ X' ↦ X'Y' — AB ↦ CD gives BA ↦ BADC.
  const AttributeList dc({3, 2});
  Proof p = Permutation(kAB, kCD, kBA, dc);
  EXPECT_EQ(p.Conclusion(), OrderDependency(kBA, kBA.Concat(dc)));
  ExpectChecks(p);
}

TEST(TheoremsTest, NormExtendChecks) {
  Proof p = NormExtend(kAB, kBA);  // AB ↔ ABBA
  auto conclusions = p.Conclusions();
  ASSERT_EQ(conclusions.size(), 2u);
  EXPECT_EQ(conclusions[0], OrderDependency(kAB, kAB.Concat(kBA)));
  EXPECT_EQ(conclusions[1], OrderDependency(kAB.Concat(kBA), kAB));
  ExpectChecks(p);
}

TEST(TheoremsTest, Theorem15ForwardChecks) {
  Proof p = Theorem15Forward(kA, kB);
  auto conclusions = p.Conclusions();
  ASSERT_EQ(conclusions.size(), 3u);
  EXPECT_EQ(conclusions[0], OrderDependency(kA, kAB));  // X ↦ XY
  EXPECT_EQ(conclusions[1], OrderDependency(kAB, kBA));
  EXPECT_EQ(conclusions[2], OrderDependency(kBA, kAB));
  ExpectChecks(p);
}

TEST(TheoremsTest, Theorem15BackwardChecks) {
  Proof p = Theorem15Backward(kA, kB);
  EXPECT_EQ(p.Conclusion(), OrderDependency(kA, kB));
  ExpectChecks(p);
}

TEST(TheoremsTest, ChainPremisesAndConclusion) {
  // Single-link chain: A ~ B with the side conditions makes A ~ C.
  Proof p = Chain(kA, {kB}, kC);
  auto premises = ChainPremises(kA, {kB}, kC);
  // X~Y1, Y1~Z, Y1X~Y1Z: three compatibility statements = 6 ODs.
  EXPECT_EQ(premises.size(), 6u);
  auto conclusions = p.Conclusions();
  ASSERT_EQ(conclusions.size(), 2u);
  EXPECT_EQ(conclusions[0], OrderDependency(AttributeList({0, 2}),
                                            AttributeList({2, 0})));
  ExpectChecks(p);  // Chain itself must be semantically sound.
}

TEST(TheoremsTest, ChainLongerChecks) {
  Proof p = Chain(kA, {kB, kC}, kE);
  ExpectChecks(p);
}

// Every theorem conclusion must also be certified by the model-theoretic
// prover directly from the theorem's premises (axioms ⊆ semantics).
TEST(TheoremsTest, ConclusionsFollowSemantically) {
  const std::vector<Proof> proofs = {
      Union(kA, kB, kC),       Augmentation(kA, kB, kC),
      Shift(kA, kB, kC, kE),   Decomposition(kA, kB, kC),
      Replace(kC, kA, kB, kE), Eliminate(kA, kB, kC, kEmpty),
      LeftEliminate(kA, kC, kB, kEmpty),
      Drop(kA, kB, kC, kE),    Path(kE, kA, kB, kC, AttributeList({3})),
      Partition(kC, kAB, kBA), DownwardClosure(kA, kB, kC),
      Permutation(kAB, kCD, kBA, AttributeList({3, 2})),
      Theorem15Forward(kA, kB), Theorem15Backward(kA, kB),
  };
  for (const auto& p : proofs) {
    prover::Prover pv(p.Givens());
    for (const auto& conclusion : p.Conclusions()) {
      EXPECT_TRUE(pv.Implies(conclusion))
          << "not semantically implied: " << conclusion.ToString() << "\n"
          << p.ToString();
    }
  }
}

TEST(ProofTest, PrintingIncludesRuleNames) {
  Proof p = Union(kA, kB, kC);
  const std::string text = p.ToString();
  EXPECT_NE(text.find("Pref"), std::string::npos);
  EXPECT_NE(text.find("Suf"), std::string::npos);
  EXPECT_NE(text.find("Tran"), std::string::npos);
}

TEST(ProofTest, StructureCheckCatchesBadPremise) {
  Proof p;
  p.AddStep(OrderDependency(kA, kB), Rule::kTransitivity, {3});
  std::string error;
  EXPECT_FALSE(p.CheckStructure(&error));
  EXPECT_FALSE(error.empty());
}

TEST(ProofTest, SemanticCheckerRejectsBogusStep) {
  Proof p;
  const int g = p.AddGiven(OrderDependency(kA, kB));
  p.AddStep(OrderDependency(kB, kA), Rule::kTransitivity, {g});  // bogus
  std::string error;
  EXPECT_FALSE(CheckProofSemantically(p, &error));
  EXPECT_NE(error.find("step 2"), std::string::npos);
}

}  // namespace
}  // namespace axioms
}  // namespace od
