// Empirical soundness of the six axioms (Theorem 1 / Lemmas 2–7): on random
// relation instances, every axiom instantiation whose premises hold must
// have a conclusion that holds. This mirrors the paper's soundness proofs
// with randomized model checking instead of symbol pushing.

#include <random>

#include <gtest/gtest.h>

#include "axioms/theorems.h"
#include "core/witness.h"

namespace od {
namespace axioms {
namespace {

Relation RandomRelation(std::mt19937* rng, int attrs, int rows,
                        int64_t domain) {
  std::uniform_int_distribution<int64_t> val(0, domain - 1);
  Relation r(attrs);
  for (int i = 0; i < rows; ++i) {
    std::vector<int64_t> row(attrs);
    for (auto& v : row) v = val(*rng);
    r.AddIntRow(row);
  }
  return r;
}

AttributeList RandomList(std::mt19937* rng, int attrs, int max_len) {
  std::uniform_int_distribution<int> len(0, max_len);
  std::uniform_int_distribution<int> attr(0, attrs - 1);
  const int n = len(*rng);
  std::vector<AttributeId> out;
  AttributeSet used;
  for (int i = 0; i < n; ++i) {
    const AttributeId a = attr(*rng);
    if (!used.Contains(a)) {
      used.Add(a);
      out.push_back(a);
    }
  }
  return AttributeList(std::move(out));
}

class AxiomSoundnessTest : public ::testing::TestWithParam<int> {
 protected:
  static constexpr int kAttrs = 4;
  std::mt19937 rng_{static_cast<uint32_t>(GetParam())};
};

TEST_P(AxiomSoundnessTest, Reflexivity) {
  // OD1 has no premises: XY ↦ X must hold in EVERY instance.
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = RandomRelation(&rng_, kAttrs, 6, 3);
    const AttributeList x = RandomList(&rng_, kAttrs, 2);
    const AttributeList y = RandomList(&rng_, kAttrs, 2);
    EXPECT_TRUE(Satisfies(r, OrderDependency(x.Concat(y), x)));
  }
}

TEST_P(AxiomSoundnessTest, Normalization) {
  // OD3 has no premises: TXUXV ↔ TXUV must hold in EVERY instance.
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = RandomRelation(&rng_, kAttrs, 6, 3);
    const AttributeList t = RandomList(&rng_, kAttrs, 1);
    const AttributeList x = RandomList(&rng_, kAttrs, 2);
    const AttributeList u = RandomList(&rng_, kAttrs, 1);
    const AttributeList v = RandomList(&rng_, kAttrs, 1);
    const AttributeList lhs = t.Concat(x).Concat(u).Concat(x).Concat(v);
    const AttributeList rhs = t.Concat(x).Concat(u).Concat(v);
    EXPECT_TRUE(SatisfiesEquivalence(r, lhs, rhs));
  }
}

TEST_P(AxiomSoundnessTest, Prefix) {
  // OD2: if r ⊨ X ↦ Y then r ⊨ ZX ↦ ZY.
  for (int trial = 0; trial < 40; ++trial) {
    Relation r = RandomRelation(&rng_, kAttrs, 5, 2);
    const AttributeList x = RandomList(&rng_, kAttrs, 2);
    const AttributeList y = RandomList(&rng_, kAttrs, 2);
    const AttributeList z = RandomList(&rng_, kAttrs, 2);
    if (!Satisfies(r, OrderDependency(x, y))) continue;
    EXPECT_TRUE(Satisfies(r, OrderDependency(z.Concat(x), z.Concat(y))))
        << "X ↦ Y held but ZX ↦ ZY failed on\n"
        << r.ToString();
  }
}

TEST_P(AxiomSoundnessTest, Transitivity) {
  for (int trial = 0; trial < 40; ++trial) {
    Relation r = RandomRelation(&rng_, kAttrs, 5, 2);
    const AttributeList x = RandomList(&rng_, kAttrs, 2);
    const AttributeList y = RandomList(&rng_, kAttrs, 2);
    const AttributeList z = RandomList(&rng_, kAttrs, 2);
    if (!Satisfies(r, OrderDependency(x, y))) continue;
    if (!Satisfies(r, OrderDependency(y, z))) continue;
    EXPECT_TRUE(Satisfies(r, OrderDependency(x, z)));
  }
}

TEST_P(AxiomSoundnessTest, Suffix) {
  // OD5: if r ⊨ X ↦ Y then r ⊨ X ↔ YX.
  for (int trial = 0; trial < 40; ++trial) {
    Relation r = RandomRelation(&rng_, kAttrs, 5, 2);
    const AttributeList x = RandomList(&rng_, kAttrs, 2);
    const AttributeList y = RandomList(&rng_, kAttrs, 2);
    if (!Satisfies(r, OrderDependency(x, y))) continue;
    EXPECT_TRUE(SatisfiesEquivalence(r, x, y.Concat(x)));
  }
}

TEST_P(AxiomSoundnessTest, Chain) {
  // OD6 with a single-link chain: premises X ~ Y, Y ~ Z, YX ~ YZ must
  // entail X ~ Z on every instance satisfying them.
  for (int trial = 0; trial < 60; ++trial) {
    Relation r = RandomRelation(&rng_, 3, 4, 2);
    const AttributeList x({0}), y({1}), z({2});
    bool premises = true;
    for (const auto& dep : ChainPremises(x, {y}, z)) {
      if (!Satisfies(r, dep)) {
        premises = false;
        break;
      }
    }
    if (!premises) continue;
    EXPECT_TRUE(SatisfiesCompatibility(r, x, z))
        << "Chain premises held but X ~ Z failed on\n"
        << r.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxiomSoundnessTest, ::testing::Range(1, 11));

// Figure 3 of the paper: the two-row pattern where A and C swap while every
// Bi disagrees — it must falsify one of the Chain premises.
TEST(ChainFigure3Test, SwapPatternViolatesPremises) {
  // A B1 B2 C with A=0→1, Bi=0→1, C=1→0 (the figure's rows).
  Relation r = Relation::FromInts({{0, 0, 0, 1}, {1, 1, 1, 0}});
  const AttributeList a({0}), b1({1}), b2({2}), c({3});
  bool all_premises_hold = true;
  for (const auto& dep : ChainPremises(a, {b1, b2}, c)) {
    if (!Satisfies(r, dep)) {
      all_premises_hold = false;
      break;
    }
  }
  EXPECT_FALSE(all_premises_hold);
  EXPECT_FALSE(SatisfiesCompatibility(r, a, c));
}

}  // namespace
}  // namespace axioms
}  // namespace od
