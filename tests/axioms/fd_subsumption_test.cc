// Section 4.2: functional dependencies are subsumed by order dependencies.
// These tests mechanize Lemma 1, Theorem 13, and the derivations of
// Armstrong's three axioms inside the OD system (Theorem 16).

#include <gtest/gtest.h>

#include "axioms/system.h"
#include "axioms/theorems.h"
#include "core/witness.h"
#include "fd/fd_set.h"
#include "prover/prover.h"

namespace od {
namespace axioms {
namespace {

// Lemma 1: any instance satisfying X ↦ Y satisfies set(X) → set(Y).
TEST(FdSubsumptionTest, Lemma1OdImpliesFd) {
  Relation r = Relation::FromInts(
      {{1, 10, 100}, {2, 20, 100}, {2, 20, 100}, {3, 5, 7}});
  const OrderDependency dep(AttributeList({0}), AttributeList({1, 2}));
  if (Satisfies(r, dep)) {
    EXPECT_TRUE(fd::Satisfies(
        r, fd::FunctionalDependency(AttributeSet{0}, AttributeSet{1, 2})));
  }
  // And with the prover: X ↦ Y semantically entails the FD-shaped X ↦ XY.
  DependencySet m;
  m.Add(dep);
  prover::Prover pv(m);
  EXPECT_TRUE(pv.Implies(AttributeList({0}), AttributeList({0, 1, 2})));
}

// Theorem 13: F → G holds iff X ↦ XY holds for lists X, Y ordering F, G —
// checked per-instance over randomized orderings.
TEST(FdSubsumptionTest, Theorem13Correspondence) {
  Relation holds = Relation::FromInts({{1, 7}, {1, 7}, {2, 9}});
  EXPECT_TRUE(fd::Satisfies(
      holds, fd::FunctionalDependency(AttributeSet{0}, AttributeSet{1})));
  EXPECT_TRUE(Satisfies(
      holds, OrderDependency(AttributeList({0}), AttributeList({0, 1}))));

  Relation fails = Relation::FromInts({{1, 7}, {1, 8}});
  EXPECT_FALSE(fd::Satisfies(
      fails, fd::FunctionalDependency(AttributeSet{0}, AttributeSet{1})));
  EXPECT_FALSE(Satisfies(
      fails, OrderDependency(AttributeList({0}), AttributeList({0, 1}))));

  // FD-shaped ODs are insensitive to the list order chosen (Permutation).
  Relation multi = Relation::FromInts(
      {{1, 2, 3, 4}, {1, 2, 3, 4}, {5, 6, 7, 8}, {5, 6, 7, 9}});
  const bool fd_holds = fd::Satisfies(
      multi, fd::FunctionalDependency(AttributeSet{0, 1}, AttributeSet{2}));
  for (const auto& x : {AttributeList({0, 1}), AttributeList({1, 0})}) {
    EXPECT_EQ(fd_holds, Satisfies(multi, OrderDependency(
                                             x, x.Concat(AttributeList({2})))));
  }
}

TEST(FdSubsumptionTest, ArmstrongReflexivityDerived) {
  // G ⊆ F ⟹ F → G, derived with Normalization only.
  Proof p = ArmstrongReflexivity(AttributeSet{0, 1, 2}, AttributeSet{1});
  std::string error;
  EXPECT_TRUE(CheckProofSemantically(p, &error)) << error << p.ToString();
  // The conclusion is the FD-shaped OD X ↦ XY.
  EXPECT_EQ(p.Conclusions()[0],
            OrderDependency(AttributeList({0, 1, 2}),
                            AttributeList({0, 1, 2, 1})));
  // No premises at all: it is a theorem.
  EXPECT_EQ(p.Givens().Size(), 0);
}

TEST(FdSubsumptionTest, ArmstrongAugmentationDerived) {
  // F → G ⟹ FZ → GZ.
  Proof p = ArmstrongAugmentation(AttributeSet{0}, AttributeSet{1},
                                  AttributeSet{2});
  std::string error;
  EXPECT_TRUE(CheckProofSemantically(p, &error)) << error << p.ToString();
  // Conclusion XZ ↦ XZYZ encodes {F,Z} → {G,Z}.
  EXPECT_EQ(p.Conclusion(),
            OrderDependency(AttributeList({0, 2}),
                            AttributeList({0, 2, 1, 2})));
}

TEST(FdSubsumptionTest, ArmstrongTransitivityDerived) {
  // F → G, G → H ⟹ F → H.
  Proof p = ArmstrongTransitivity(AttributeSet{0}, AttributeSet{1},
                                  AttributeSet{2});
  std::string error;
  EXPECT_TRUE(CheckProofSemantically(p, &error)) << error << p.ToString();
  EXPECT_EQ(p.Conclusion(),
            OrderDependency(AttributeList({0}), AttributeList({0, 2})));
}

// Completeness over FDs: whatever the FD projection derives, the OD prover
// confirms on FD-shaped ODs, and vice versa.
TEST(FdSubsumptionTest, ProverMatchesFdClosure) {
  DependencySet m;
  m.Add(AttributeList({0}), AttributeList({1}));        // A ↦ B
  m.Add(AttributeList({1, 2}), AttributeList({1, 2, 3}));  // BC ↦ BCD
  prover::Prover pv(m);
  const fd::FdSet fds = fd::FdProjection(m);
  const AttributeSet universe{0, 1, 2, 3};
  const std::vector<AttributeId> attrs = universe.ToVector();
  // Sweep all lhs subsets × single rhs attributes.
  for (uint64_t mask = 0; mask < 16; ++mask) {
    AttributeSet f;
    for (int i = 0; i < 4; ++i) {
      if (mask & (uint64_t{1} << i)) f.Add(attrs[i]);
    }
    for (AttributeId g : attrs) {
      const bool by_fd = fds.Implies(f, AttributeSet{g});
      const AttributeList x(f.ToVector());
      const bool by_od = pv.Implies(x, x.Append(g));
      EXPECT_EQ(by_fd, by_od)
          << ToString(f) << " -> " << g;
    }
  }
}

}  // namespace
}  // namespace axioms
}  // namespace od
