#include "axioms/proof_search.h"

#include <gtest/gtest.h>

#include "axioms/system.h"
#include "core/parser.h"
#include "prover/closure.h"
#include "prover/prover.h"

namespace od {
namespace axioms {
namespace {

DependencySet Parse(NameTable* names, const std::string& text) {
  Parser parser(names);
  auto set = parser.ParseSet(text);
  EXPECT_TRUE(set.has_value()) << parser.error();
  return *set;
}

void ExpectFindsCheckedProof(const DependencySet& m,
                             const OrderDependency& goal) {
  auto proof = SearchProof(m, goal);
  ASSERT_TRUE(proof.has_value()) << "no proof found for " << goal.ToString();
  EXPECT_EQ(proof->Conclusions()[0], goal);
  std::string error;
  EXPECT_TRUE(CheckProofSemantically(*proof, &error))
      << error << "\n"
      << proof->ToString();
  // Every given must come from ℳ.
  const DependencySet givens = proof->Givens();
  for (const auto& dep : givens.ods()) {
    EXPECT_TRUE(m.Contains(dep)) << dep.ToString();
  }
}

TEST(ProofSearchTest, DirectGiven) {
  NameTable names;
  DependencySet m = Parse(&names, "[a] -> [b]");
  ExpectFindsCheckedProof(
      m, OrderDependency(AttributeList({0}), AttributeList({1})));
}

TEST(ProofSearchTest, TransitiveChain) {
  NameTable names;
  DependencySet m = Parse(&names, "[a] -> [b]; [b] -> [c]; [c] -> [d]");
  ExpectFindsCheckedProof(
      m, OrderDependency(AttributeList({0}), AttributeList({3})));
}

TEST(ProofSearchTest, SuffixConsequence) {
  NameTable names;
  DependencySet m = Parse(&names, "[a] -> [b]");
  // X ↔ YX from Suffix.
  ExpectFindsCheckedProof(
      m, OrderDependency(AttributeList({0}), AttributeList({1, 0})));
  ExpectFindsCheckedProof(
      m, OrderDependency(AttributeList({1, 0}), AttributeList({0})));
}

TEST(ProofSearchTest, LeftEliminateShape) {
  // The Example 1 rewrite found syntactically:
  // [year, quarter, month] ↦ [year, month] from month ↦ quarter.
  NameTable names;
  DependencySet m = Parse(&names, "[month] -> [quarter]");
  const AttributeId month = names.Lookup("month");
  const AttributeId quarter = names.Lookup("quarter");
  const AttributeId year = names.Intern("year");
  ExpectFindsCheckedProof(
      m, OrderDependency(AttributeList({year, quarter, month}),
                         AttributeList({year, month})));
  ExpectFindsCheckedProof(
      m, OrderDependency(AttributeList({year, month}),
                         AttributeList({year, quarter, month})));
}

TEST(ProofSearchTest, ReflexivityNeedsNoGivens) {
  DependencySet empty;
  auto proof = SearchProof(
      empty, OrderDependency(AttributeList({0, 1}), AttributeList({0})));
  ASSERT_TRUE(proof.has_value());
  EXPECT_EQ(proof->Givens().Size(), 0);
}

TEST(ProofSearchTest, DuplicateListsBridgedByNormalization) {
  NameTable names;
  DependencySet m = Parse(&names, "[a] -> [b]");
  // Goal with a duplicated attribute on the left.
  const OrderDependency goal(AttributeList({0, 0}), AttributeList({1}));
  auto proof = SearchProof(m, goal);
  ASSERT_TRUE(proof.has_value());
  EXPECT_EQ(proof->Conclusions()[0], goal);
  std::string error;
  EXPECT_TRUE(CheckProofSemantically(*proof, &error)) << error;
}

TEST(ProofSearchTest, NonTheoremsFail) {
  NameTable names;
  DependencySet m = Parse(&names, "[a] -> [b]");
  EXPECT_FALSE(SearchProof(m, OrderDependency(AttributeList({1}),
                                              AttributeList({0})))
                   .has_value());
  EXPECT_FALSE(SearchProof(m, OrderDependency(AttributeList({0}),
                                              AttributeList({2})))
                   .has_value());
}

// Agreement sweep: on small theories, whatever the search proves is implied
// (soundness), and the search finds proofs for bounded implied FD/OD goals
// it is complete enough for.
TEST(ProofSearchTest, AgreesWithSemanticProver) {
  NameTable names;
  DependencySet m = Parse(&names, "[a] -> [b]; [b] -> [c]");
  prover::Prover pv(m);
  const auto lists = prover::EnumerateLists(AttributeSet{0, 1, 2}, 2);
  int proved = 0;
  for (const auto& x : lists) {
    for (const auto& y : lists) {
      const OrderDependency dep(x, y);
      auto proof = SearchProof(m, dep);
      if (proof.has_value()) {
        ++proved;
        EXPECT_TRUE(pv.Implies(dep)) << "unsound proof for " << dep.ToString();
        std::string error;
        EXPECT_TRUE(CheckProofSemantically(*proof, &error)) << error;
      } else {
        // The search is conservative; but for this simple theory it should
        // not miss anything the semantics implies at these lengths.
        EXPECT_FALSE(pv.Implies(dep))
            << "search missed the implied OD " << dep.ToString();
      }
    }
  }
  EXPECT_GT(proved, 20);
}

}  // namespace
}  // namespace axioms
}  // namespace od
