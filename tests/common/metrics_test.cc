#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace od {
namespace common {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), int64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, PowerOfTwoBuckets) {
  Histogram h;
  // v <= 1 (incl. 0 and negatives) -> bucket 0; otherwise the smallest i
  // with v <= 2^i.
  h.Record(0);
  h.Record(1);
  h.Record(2);   // bucket 1
  h.Record(3);   // bucket 2 (3 <= 4)
  h.Record(4);   // bucket 2
  h.Record(5);   // bucket 3
  h.Record(1024);  // bucket 10
  EXPECT_EQ(h.BucketCount(0), 2);
  EXPECT_EQ(h.BucketCount(1), 1);
  EXPECT_EQ(h.BucketCount(2), 2);
  EXPECT_EQ(h.BucketCount(3), 1);
  EXPECT_EQ(h.BucketCount(10), 1);
  EXPECT_EQ(h.Count(), 7);
  EXPECT_EQ(h.Sum(), 0 + 1 + 2 + 3 + 4 + 5 + 1024);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 8.0);
  EXPECT_TRUE(std::isinf(
      Histogram::BucketUpperBound(Histogram::kBuckets - 1)));
}

TEST(HistogramTest, HugeValuesLandInOverflow) {
  Histogram h;
  h.Record(std::numeric_limits<int64_t>::max());
  EXPECT_EQ(h.BucketCount(Histogram::kBuckets - 1), 1);
  EXPECT_EQ(h.Count(), 1);
}

TEST(RegistryTest, GetReturnsSameInstanceAndLabelsDistinguish) {
  MetricRegistry& reg = MetricRegistry::Global();
  Counter& a = reg.GetCounter("od_test_registry_counter");
  Counter& b = reg.GetCounter("od_test_registry_counter");
  EXPECT_EQ(&a, &b);
  Counter& l1 = reg.GetCounter("od_test_registry_counter", "", "k=\"1\"");
  Counter& l2 = reg.GetCounter("od_test_registry_counter", "", "k=\"2\"");
  EXPECT_NE(&l1, &l2);
  EXPECT_NE(&a, &l1);
}

TEST(RegistryTest, KindClashThrows) {
  MetricRegistry& reg = MetricRegistry::Global();
  reg.GetCounter("od_test_kind_clash");
  EXPECT_THROW(reg.GetGauge("od_test_kind_clash"), std::invalid_argument);
}

/// A snapshot with every metric kind populated, registered under unique
/// names so other tests (and the instrumented library) can't collide.
MetricsSnapshot BuildSampleSnapshot() {
  MetricRegistry& reg = MetricRegistry::Global();
  // Several tests call this; reset first so values are per-call exact.
  Counter& c = reg.GetCounter("od_test_rt_counter", "a counter");
  c.Reset();
  c.Add(7);
  Counter& cl =
      reg.GetCounter("od_test_rt_counter_labeled", "", "level=\"3\",kind=\"x\"");
  cl.Reset();
  cl.Add(11);
  reg.GetGauge("od_test_rt_gauge", "a gauge").Set(-5);
  Histogram& h = reg.GetHistogram("od_test_rt_hist", "a histogram");
  h.Reset();
  h.Record(1);
  h.Record(3);
  h.Record(100);
  MetricsSnapshot snap = reg.Snapshot();
  // Work on the subset this test owns: snapshots of the global registry
  // include whatever the instrumented library registered.
  MetricsSnapshot mine;
  for (const auto& [k, v] : snap.counters) {
    if (k.find("od_test_rt_") == 0) mine.counters[k] = v;
  }
  for (const auto& [k, v] : snap.gauges) {
    if (k.find("od_test_rt_") == 0) mine.gauges[k] = v;
  }
  for (const auto& [k, v] : snap.histograms) {
    if (k.find("od_test_rt_") == 0) mine.histograms[k] = v;
  }
  return mine;
}

TEST(SnapshotTest, HistogramBucketsAreCumulativeAndEndAtInf) {
  const MetricsSnapshot snap = BuildSampleSnapshot();
  const auto& h = snap.histograms.at("od_test_rt_hist");
  EXPECT_EQ(h.count, 3);
  EXPECT_EQ(h.sum, 104);
  ASSERT_FALSE(h.buckets.empty());
  EXPECT_TRUE(std::isinf(h.buckets.back().first));
  EXPECT_EQ(h.buckets.back().second, 3);  // cumulative total
  // Cumulative counts never decrease.
  for (size_t i = 1; i < h.buckets.size(); ++i) {
    EXPECT_GE(h.buckets[i].second, h.buckets[i - 1].second);
  }
}

TEST(SnapshotTest, JsonRoundTrips) {
  const MetricsSnapshot snap = BuildSampleSnapshot();
  const std::string json = MetricRegistry::ToJson(snap);
  const MetricsSnapshot back = MetricRegistry::FromJson(json);
  EXPECT_TRUE(snap == back) << json;
}

TEST(SnapshotTest, PrometheusRoundTrips) {
  const MetricsSnapshot snap = BuildSampleSnapshot();
  const std::string text = MetricRegistry::ToPrometheusText(snap);
  const MetricsSnapshot back = MetricRegistry::FromPrometheusText(text);
  EXPECT_TRUE(snap == back) << text;
}

TEST(SnapshotTest, PrometheusTextHasExpositionShape) {
  const MetricsSnapshot snap = BuildSampleSnapshot();
  const std::string text = MetricRegistry::ToPrometheusText(snap);
  EXPECT_NE(text.find("# TYPE od_test_rt_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("od_test_rt_counter 7"), std::string::npos);
  EXPECT_NE(text.find(
                "od_test_rt_counter_labeled{level=\"3\",kind=\"x\"} 11"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE od_test_rt_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("od_test_rt_gauge -5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE od_test_rt_hist histogram"),
            std::string::npos);
  EXPECT_NE(text.find("od_test_rt_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("od_test_rt_hist_sum 104"), std::string::npos);
  EXPECT_NE(text.find("od_test_rt_hist_count 3"), std::string::npos);
}

TEST(SnapshotTest, ParsersRejectMalformedInput) {
  EXPECT_THROW(MetricRegistry::FromJson("not json"),
               std::invalid_argument);
  EXPECT_THROW(MetricRegistry::FromJson("{\"counters\": {"),
               std::invalid_argument);
  EXPECT_THROW(MetricRegistry::FromPrometheusText("orphan_sample 3\n"),
               std::invalid_argument);
  EXPECT_THROW(MetricRegistry::FromPrometheusText("# TYPE h histogram\n"
                                                  "h_bucket 3\n"),
               std::invalid_argument);
}

TEST(SnapshotTest, EmptySnapshotRoundTripsBothWays) {
  const MetricsSnapshot empty;
  EXPECT_TRUE(MetricRegistry::FromJson(MetricRegistry::ToJson(empty)) ==
              empty);
  EXPECT_TRUE(MetricRegistry::FromPrometheusText(
                  MetricRegistry::ToPrometheusText(empty)) == empty);
}

TEST(RegistryTest, ConcurrentRegistrationAndWrites) {
  MetricRegistry& reg = MetricRegistry::Global();
  ThreadPool pool(8);
  pool.ParallelFor(64, [&](int64_t i) {
    // Half the threads register-and-tick the same counter, half distinct
    // labeled ones; snapshots run concurrently with the writes.
    Counter& c = reg.GetCounter(
        "od_test_concurrent", "",
        i % 2 == 0 ? "" : "slot=\"" + std::to_string(i % 4) + "\"");
    c.Add();
    (void)reg.Snapshot();
  });
  const MetricsSnapshot snap = reg.Snapshot();
  int64_t total = 0;
  for (const auto& [k, v] : snap.counters) {
    if (k.find("od_test_concurrent") == 0) total += v;
  }
  EXPECT_EQ(total, 64);
}

}  // namespace
}  // namespace common
}  // namespace od
