#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace od {
namespace common {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), int64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, PowerOfTwoBuckets) {
  Histogram h;
  // v <= 1 (incl. 0 and negatives) -> bucket 0; otherwise the smallest i
  // with v <= 2^i.
  h.Record(0);
  h.Record(1);
  h.Record(2);   // bucket 1
  h.Record(3);   // bucket 2 (3 <= 4)
  h.Record(4);   // bucket 2
  h.Record(5);   // bucket 3
  h.Record(1024);  // bucket 10
  EXPECT_EQ(h.BucketCount(0), 2);
  EXPECT_EQ(h.BucketCount(1), 1);
  EXPECT_EQ(h.BucketCount(2), 2);
  EXPECT_EQ(h.BucketCount(3), 1);
  EXPECT_EQ(h.BucketCount(10), 1);
  EXPECT_EQ(h.Count(), 7);
  EXPECT_EQ(h.Sum(), 0 + 1 + 2 + 3 + 4 + 5 + 1024);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 8.0);
  EXPECT_TRUE(std::isinf(
      Histogram::BucketUpperBound(Histogram::kBuckets - 1)));
}

TEST(HistogramTest, HugeValuesLandInOverflow) {
  Histogram h;
  h.Record(std::numeric_limits<int64_t>::max());
  EXPECT_EQ(h.BucketCount(Histogram::kBuckets - 1), 1);
  EXPECT_EQ(h.Count(), 1);
}

TEST(RegistryTest, GetReturnsSameInstanceAndLabelsDistinguish) {
  MetricRegistry& reg = MetricRegistry::Global();
  Counter& a = reg.GetCounter("od_test_registry_counter");
  Counter& b = reg.GetCounter("od_test_registry_counter");
  EXPECT_EQ(&a, &b);
  Counter& l1 = reg.GetCounter("od_test_registry_counter", "", "k=\"1\"");
  Counter& l2 = reg.GetCounter("od_test_registry_counter", "", "k=\"2\"");
  EXPECT_NE(&l1, &l2);
  EXPECT_NE(&a, &l1);
}

TEST(RegistryTest, KindClashThrows) {
  MetricRegistry& reg = MetricRegistry::Global();
  reg.GetCounter("od_test_kind_clash");
  EXPECT_THROW(reg.GetGauge("od_test_kind_clash"), std::invalid_argument);
}

/// A snapshot with every metric kind populated, registered under unique
/// names so other tests (and the instrumented library) can't collide.
MetricsSnapshot BuildSampleSnapshot() {
  MetricRegistry& reg = MetricRegistry::Global();
  // Several tests call this; reset first so values are per-call exact.
  Counter& c = reg.GetCounter("od_test_rt_counter", "a counter");
  c.Reset();
  c.Add(7);
  Counter& cl =
      reg.GetCounter("od_test_rt_counter_labeled", "", "level=\"3\",kind=\"x\"");
  cl.Reset();
  cl.Add(11);
  reg.GetGauge("od_test_rt_gauge", "a gauge").Set(-5);
  Histogram& h = reg.GetHistogram("od_test_rt_hist", "a histogram");
  h.Reset();
  h.Record(1);
  h.Record(3);
  h.Record(100);
  MetricsSnapshot snap = reg.Snapshot();
  // Work on the subset this test owns: snapshots of the global registry
  // include whatever the instrumented library registered.
  MetricsSnapshot mine;
  for (const auto& [k, v] : snap.counters) {
    if (k.find("od_test_rt_") == 0) mine.counters[k] = v;
  }
  for (const auto& [k, v] : snap.gauges) {
    if (k.find("od_test_rt_") == 0) mine.gauges[k] = v;
  }
  for (const auto& [k, v] : snap.histograms) {
    if (k.find("od_test_rt_") == 0) mine.histograms[k] = v;
  }
  return mine;
}

TEST(SnapshotTest, HistogramBucketsAreCumulativeAndEndAtInf) {
  const MetricsSnapshot snap = BuildSampleSnapshot();
  const auto& h = snap.histograms.at("od_test_rt_hist");
  EXPECT_EQ(h.count, 3);
  EXPECT_EQ(h.sum, 104);
  ASSERT_FALSE(h.buckets.empty());
  EXPECT_TRUE(std::isinf(h.buckets.back().first));
  EXPECT_EQ(h.buckets.back().second, 3);  // cumulative total
  // Cumulative counts never decrease.
  for (size_t i = 1; i < h.buckets.size(); ++i) {
    EXPECT_GE(h.buckets[i].second, h.buckets[i - 1].second);
  }
}

TEST(SnapshotTest, JsonRoundTrips) {
  const MetricsSnapshot snap = BuildSampleSnapshot();
  const std::string json = MetricRegistry::ToJson(snap);
  const MetricsSnapshot back = MetricRegistry::FromJson(json);
  EXPECT_TRUE(snap == back) << json;
}

TEST(SnapshotTest, PrometheusRoundTrips) {
  const MetricsSnapshot snap = BuildSampleSnapshot();
  const std::string text = MetricRegistry::ToPrometheusText(snap);
  const MetricsSnapshot back = MetricRegistry::FromPrometheusText(text);
  EXPECT_TRUE(snap == back) << text;
}

TEST(SnapshotTest, PrometheusTextHasExpositionShape) {
  const MetricsSnapshot snap = BuildSampleSnapshot();
  const std::string text = MetricRegistry::ToPrometheusText(snap);
  EXPECT_NE(text.find("# TYPE od_test_rt_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("od_test_rt_counter 7"), std::string::npos);
  EXPECT_NE(text.find(
                "od_test_rt_counter_labeled{level=\"3\",kind=\"x\"} 11"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE od_test_rt_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("od_test_rt_gauge -5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE od_test_rt_hist histogram"),
            std::string::npos);
  EXPECT_NE(text.find("od_test_rt_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("od_test_rt_hist_sum 104"), std::string::npos);
  EXPECT_NE(text.find("od_test_rt_hist_count 3"), std::string::npos);
}

TEST(SnapshotTest, ParsersRejectMalformedInput) {
  EXPECT_THROW(MetricRegistry::FromJson("not json"),
               std::invalid_argument);
  EXPECT_THROW(MetricRegistry::FromJson("{\"counters\": {"),
               std::invalid_argument);
  EXPECT_THROW(MetricRegistry::FromPrometheusText("orphan_sample 3\n"),
               std::invalid_argument);
  EXPECT_THROW(MetricRegistry::FromPrometheusText("# TYPE h histogram\n"
                                                  "h_bucket 3\n"),
               std::invalid_argument);
}

TEST(SnapshotTest, EmptySnapshotRoundTripsBothWays) {
  const MetricsSnapshot empty;
  EXPECT_TRUE(MetricRegistry::FromJson(MetricRegistry::ToJson(empty)) ==
              empty);
  EXPECT_TRUE(MetricRegistry::FromPrometheusText(
                  MetricRegistry::ToPrometheusText(empty)) == empty);
}

TEST(RegistryTest, ConcurrentRegistrationAndWrites) {
  MetricRegistry& reg = MetricRegistry::Global();
  ThreadPool pool(8);
  pool.ParallelFor(64, [&](int64_t i) {
    // Half the threads register-and-tick the same counter, half distinct
    // labeled ones; snapshots run concurrently with the writes.
    Counter& c = reg.GetCounter(
        "od_test_concurrent", "",
        i % 2 == 0 ? "" : "slot=\"" + std::to_string(i % 4) + "\"");
    c.Add();
    (void)reg.Snapshot();
  });
  const MetricsSnapshot snap = reg.Snapshot();
  int64_t total = 0;
  for (const auto& [k, v] : snap.counters) {
    if (k.find("od_test_concurrent") == 0) total += v;
  }
  EXPECT_EQ(total, 64);
}

TEST(QuantileTest, EmptySnapshotIsZero) {
  Histogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.ValueAtQuantile(0.5), 0.0);
  EXPECT_EQ(snap.ValueAtQuantile(0.99), 0.0);
}

TEST(QuantileTest, SingleBucketInterpolatesWithinIt) {
  Histogram h;
  // 100 observations, all in the (64, 128] bucket.
  for (int i = 0; i < 100; ++i) h.Record(100);
  const HistogramSnapshot snap = h.Snapshot();
  // Linear interpolation inside (64, 128]: the median lands mid-bucket.
  EXPECT_DOUBLE_EQ(snap.ValueAtQuantile(0.5), 64 + 0.5 * (128 - 64));
  EXPECT_DOUBLE_EQ(snap.ValueAtQuantile(1.0), 128.0);
  // q=0 clamps into the winning bucket's lower edge.
  EXPECT_GE(snap.ValueAtQuantile(0.0), 64.0);
}

TEST(QuantileTest, MultiBucketRanksPickTheRightBucket) {
  Histogram h;
  // 90 cheap (bucket le=1), 10 expensive (bucket (512, 1024]): p50 sits
  // in the cheap bucket, p95+ in the expensive one.
  for (int i = 0; i < 90; ++i) h.Record(1);
  for (int i = 0; i < 10; ++i) h.Record(1000);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_LE(snap.ValueAtQuantile(0.5), 1.0);
  const double p95 = snap.ValueAtQuantile(0.95);
  EXPECT_GT(p95, 512.0);
  EXPECT_LE(p95, 1024.0);
  EXPECT_GT(snap.ValueAtQuantile(0.99), p95 - 1e-9);
}

TEST(QuantileTest, QuantilesAreMonotonicInQ) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i);
  const HistogramSnapshot snap = h.Snapshot();
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = snap.ValueAtQuantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(QuantileTest, OverflowBucketClampsToHighestFiniteBound) {
  Histogram h;
  // Everything in the +Inf overflow bucket: the data bounds nothing, so
  // the estimate clamps to the highest finite le rather than returning
  // infinity.
  const int64_t huge = std::numeric_limits<int64_t>::max() - 8;
  for (int i = 0; i < 8; ++i) h.Record(huge + i);
  const HistogramSnapshot snap = h.Snapshot();
  const double p99 = snap.ValueAtQuantile(0.99);
  EXPECT_FALSE(std::isinf(p99));
  EXPECT_DOUBLE_EQ(p99, snap.buckets[snap.buckets.size() - 2].first);
}

TEST(QuantileTest, OutOfRangeQClamps) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Record(100);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_DOUBLE_EQ(snap.ValueAtQuantile(-1.0), snap.ValueAtQuantile(0.0));
  EXPECT_DOUBLE_EQ(snap.ValueAtQuantile(2.0), snap.ValueAtQuantile(1.0));
}

TEST(QuantileTest, SnapshotMatchesRegistryShape) {
  // Histogram::Snapshot and MetricRegistry::Snapshot agree bucket for
  // bucket — the registry path routes through the same helper.
  MetricRegistry& reg = MetricRegistry::Global();
  Histogram& h = reg.GetHistogram("od_test_quantile_shape", "");
  h.Reset();
  h.Record(3);
  h.Record(300);
  const auto via_registry =
      reg.Snapshot().histograms.at("od_test_quantile_shape");
  EXPECT_TRUE(h.Snapshot() == via_registry);
}

}  // namespace
}  // namespace common
}  // namespace od
