#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace od {
namespace common {
namespace {

#if OD_TRACE_ENABLED

struct Ev {
  std::string name;
  int64_t ts = 0;
  int64_t dur = 0;
  uint32_t tid = 0;
  int depth = 0;
};

int64_t FieldAfter(const std::string& json, size_t from,
                   const std::string& key) {
  const size_t pos = json.find(key, from);
  EXPECT_NE(pos, std::string::npos) << "missing " << key;
  if (pos == std::string::npos) return 0;
  return std::strtoll(json.c_str() + pos + key.size(), nullptr, 10);
}

/// Pulls every complete event out of the export. The format is ours
/// (trace.cc), so field-order scanning is a faithful parse.
std::vector<Ev> ParseEvents(const std::string& json) {
  std::vector<Ev> events;
  const std::string marker = "{\"name\":\"";
  size_t pos = json.find(marker);
  while (pos != std::string::npos) {
    Ev e;
    const size_t name_begin = pos + marker.size();
    const size_t name_end = json.find('"', name_begin);
    e.name = json.substr(name_begin, name_end - name_begin);
    const size_t obj_end = json.find('}', name_end);  // closes "args"
    e.ts = FieldAfter(json, name_end, "\"ts\":");
    e.dur = FieldAfter(json, name_end, "\"dur\":");
    e.tid = static_cast<uint32_t>(FieldAfter(json, name_end, "\"tid\":"));
    e.depth = static_cast<int>(FieldAfter(json, name_end, "\"depth\":"));
    events.push_back(e);
    pos = json.find(marker, obj_end);
  }
  return events;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Clear();
    Tracer::Global().Enable();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

TEST_F(TraceTest, ExportIsWellFormedChromeTraceJson) {
  {
    OD_TRACE_SPAN("test.outer");
    OD_TRACE_SPAN("test.inner");
  }
  std::string json = Tracer::Global().ExportChromeTrace();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  while (!json.empty() && std::isspace(static_cast<unsigned char>(json.back()))) {
    json.pop_back();
  }
  EXPECT_EQ(json.substr(json.size() - 2), "]}") << json;
  // Balanced braces — the events are flat objects, so a count suffices.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST_F(TraceTest, SpansNestWithDepthAndContainment) {
  {
    OD_TRACE_SPAN("test.outer");
    {
      OD_TRACE_SPAN("test.inner");
    }
  }
  const auto events = ParseEvents(Tracer::Global().ExportChromeTrace());
  const auto find = [&](const std::string& name) -> const Ev* {
    for (const auto& e : events) {
      if (e.name == name) return &e;
    }
    return nullptr;
  };
  const Ev* outer = find("test.outer");
  const Ev* inner = find("test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_LE(outer->ts, inner->ts);
  EXPECT_GE(outer->ts + outer->dur, inner->ts + inner->dur);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  Tracer::Global().Disable();
  {
    OD_TRACE_SPAN("test.invisible");
  }
  const std::string json = Tracer::Global().ExportChromeTrace();
  EXPECT_EQ(json.find("test.invisible"), std::string::npos);
}

TEST_F(TraceTest, RingOverflowCountsDrops) {
  for (int i = 0; i < Tracer::kRingSize + 10; ++i) {
    OD_TRACE_SPAN("test.tick");
  }
  EXPECT_GE(Tracer::Global().dropped_events(), 10);
  // The export still renders a full (truncated) window.
  const auto events = ParseEvents(Tracer::Global().ExportChromeTrace());
  EXPECT_EQ(static_cast<int>(events.size()), Tracer::kRingSize);
}

/// Eight threads trace through ThreadPool::ParallelFor concurrently. A
/// barrier inside the body holds all eight items open at once, which is
/// only possible if eight distinct threads (7 workers + the caller) each
/// claimed one — so the export must show eight tid lanes. Also the TSan
/// target for the record path (this whole binary runs under TSan in CI).
TEST_F(TraceTest, EightLanesThroughThreadPool) {
  constexpr int kLanes = 8;
  ThreadPool pool(kLanes);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  pool.ParallelFor(kLanes, [&](int64_t) {
    OD_TRACE_SPAN("test.work");
    std::unique_lock<std::mutex> lock(mu);
    if (++arrived == kLanes) {
      cv.notify_all();
    } else {
      cv.wait(lock, [&] { return arrived == kLanes; });
    }
  });
  Tracer::Global().Disable();
  const std::string json = Tracer::Global().ExportChromeTrace();
  const auto events = ParseEvents(json);

  std::set<uint32_t> work_tids;
  for (const auto& e : events) {
    if (e.name == "test.work") work_tids.insert(e.tid);
  }
  EXPECT_EQ(static_cast<int>(work_tids.size()), kLanes) << json;

  // Per lane, spans strictly nest or are disjoint — never partially
  // overlapping. That is what makes the Chrome viewer stack them.
  std::map<uint32_t, std::vector<Ev>> by_tid;
  for (const auto& e : events) by_tid[e.tid].push_back(e);
  for (auto& [tid, lane] : by_tid) {
    std::sort(lane.begin(), lane.end(), [](const Ev& a, const Ev& b) {
      return a.ts != b.ts ? a.ts < b.ts : a.depth < b.depth;
    });
    for (size_t i = 0; i + 1 < lane.size(); ++i) {
      const Ev& a = lane[i];
      const Ev& b = lane[i + 1];
      const bool disjoint = b.ts >= a.ts + a.dur;
      const bool nested = b.ts + b.dur <= a.ts + a.dur;
      EXPECT_TRUE(disjoint || nested)
          << "lane " << tid << ": [" << a.name << " " << a.ts << "+"
          << a.dur << "] vs [" << b.name << " " << b.ts << "+" << b.dur
          << "]";
    }
    // thread_pool.chunk wraps each body invocation, so every lane that
    // ran test.work shows the enclosing chunk span too.
    if (work_tids.count(tid) > 0) {
      EXPECT_TRUE(std::any_of(lane.begin(), lane.end(), [](const Ev& e) {
        return e.name == std::string("thread_pool.chunk");
      })) << "lane " << tid;
    }
  }
}

TEST_F(TraceTest, ClearDiscardsEverything) {
  {
    OD_TRACE_SPAN("test.gone");
  }
  Tracer::Global().Clear();
  const std::string json = Tracer::Global().ExportChromeTrace();
  EXPECT_EQ(json.find("test.gone"), std::string::npos);
  EXPECT_EQ(Tracer::Global().dropped_events(), 0);
}

#else  // !OD_TRACE_ENABLED

TEST(TraceTest, CompiledOutSpansAreNoOps) {
  // With OD_TRACE=OFF the macro must still parse in statement position.
  OD_TRACE_SPAN("test.never");
  SUCCEED();
}

#endif  // OD_TRACE_ENABLED

}  // namespace
}  // namespace common
}  // namespace od
