#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace od {
namespace common {
namespace {

#if OD_TRACE_ENABLED

struct Ev {
  std::string name;
  int64_t ts = 0;
  int64_t dur = 0;
  uint32_t tid = 0;
  int depth = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
};

int64_t FieldAfter(const std::string& json, size_t from,
                   const std::string& key) {
  const size_t pos = json.find(key, from);
  EXPECT_NE(pos, std::string::npos) << "missing " << key;
  if (pos == std::string::npos) return 0;
  return std::strtoll(json.c_str() + pos + key.size(), nullptr, 10);
}

/// Pulls every complete event out of the export. The format is ours
/// (trace.cc), so field-order scanning is a faithful parse.
std::vector<Ev> ParseEvents(const std::string& json) {
  std::vector<Ev> events;
  const std::string marker = "{\"name\":\"";
  size_t pos = json.find(marker);
  while (pos != std::string::npos) {
    Ev e;
    const size_t name_begin = pos + marker.size();
    const size_t name_end = json.find('"', name_begin);
    e.name = json.substr(name_begin, name_end - name_begin);
    const size_t obj_end = json.find('}', name_end);  // closes "args"
    e.ts = FieldAfter(json, name_end, "\"ts\":");
    e.dur = FieldAfter(json, name_end, "\"dur\":");
    e.tid = static_cast<uint32_t>(FieldAfter(json, name_end, "\"tid\":"));
    e.depth = static_cast<int>(FieldAfter(json, name_end, "\"depth\":"));
    e.trace_id = static_cast<uint64_t>(
        FieldAfter(json, name_end, "\"trace_id\":"));
    e.span_id = static_cast<uint64_t>(
        FieldAfter(json, name_end, "\"span_id\":"));
    e.parent_id = static_cast<uint64_t>(
        FieldAfter(json, name_end, "\"parent_id\":"));
    events.push_back(e);
    pos = json.find(marker, obj_end);
  }
  return events;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Clear();
    Tracer::Global().Enable();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

TEST_F(TraceTest, ExportIsWellFormedChromeTraceJson) {
  {
    OD_TRACE_SPAN("test.outer");
    OD_TRACE_SPAN("test.inner");
  }
  std::string json = Tracer::Global().ExportChromeTrace();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  while (!json.empty() && std::isspace(static_cast<unsigned char>(json.back()))) {
    json.pop_back();
  }
  EXPECT_EQ(json.substr(json.size() - 2), "]}") << json;
  // Balanced braces — the events are flat objects, so a count suffices.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST_F(TraceTest, SpansNestWithDepthAndContainment) {
  {
    OD_TRACE_SPAN("test.outer");
    {
      OD_TRACE_SPAN("test.inner");
    }
  }
  const auto events = ParseEvents(Tracer::Global().ExportChromeTrace());
  const auto find = [&](const std::string& name) -> const Ev* {
    for (const auto& e : events) {
      if (e.name == name) return &e;
    }
    return nullptr;
  };
  const Ev* outer = find("test.outer");
  const Ev* inner = find("test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_LE(outer->ts, inner->ts);
  EXPECT_GE(outer->ts + outer->dur, inner->ts + inner->dur);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  Tracer::Global().Disable();
  {
    OD_TRACE_SPAN("test.invisible");
  }
  const std::string json = Tracer::Global().ExportChromeTrace();
  EXPECT_EQ(json.find("test.invisible"), std::string::npos);
}

TEST_F(TraceTest, RingOverflowCountsDrops) {
  for (int i = 0; i < Tracer::kRingSize + 10; ++i) {
    OD_TRACE_SPAN("test.tick");
  }
  EXPECT_GE(Tracer::Global().dropped_events(), 10);
  // The export still renders a full (truncated) window.
  const auto events = ParseEvents(Tracer::Global().ExportChromeTrace());
  EXPECT_EQ(static_cast<int>(events.size()), Tracer::kRingSize);
}

/// Eight threads trace through ThreadPool::ParallelFor concurrently. A
/// barrier inside the body holds all eight items open at once, which is
/// only possible if eight distinct threads (7 workers + the caller) each
/// claimed one — so the export must show eight tid lanes. Also the TSan
/// target for the record path (this whole binary runs under TSan in CI).
TEST_F(TraceTest, EightLanesThroughThreadPool) {
  constexpr int kLanes = 8;
  ThreadPool pool(kLanes);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  pool.ParallelFor(kLanes, [&](int64_t) {
    OD_TRACE_SPAN("test.work");
    std::unique_lock<std::mutex> lock(mu);
    if (++arrived == kLanes) {
      cv.notify_all();
    } else {
      cv.wait(lock, [&] { return arrived == kLanes; });
    }
  });
  Tracer::Global().Disable();
  const std::string json = Tracer::Global().ExportChromeTrace();
  const auto events = ParseEvents(json);

  std::set<uint32_t> work_tids;
  for (const auto& e : events) {
    if (e.name == "test.work") work_tids.insert(e.tid);
  }
  EXPECT_EQ(static_cast<int>(work_tids.size()), kLanes) << json;

  // Per lane, spans strictly nest or are disjoint — never partially
  // overlapping. That is what makes the Chrome viewer stack them.
  std::map<uint32_t, std::vector<Ev>> by_tid;
  for (const auto& e : events) by_tid[e.tid].push_back(e);
  for (auto& [tid, lane] : by_tid) {
    std::sort(lane.begin(), lane.end(), [](const Ev& a, const Ev& b) {
      return a.ts != b.ts ? a.ts < b.ts : a.depth < b.depth;
    });
    for (size_t i = 0; i + 1 < lane.size(); ++i) {
      const Ev& a = lane[i];
      const Ev& b = lane[i + 1];
      const bool disjoint = b.ts >= a.ts + a.dur;
      const bool nested = b.ts + b.dur <= a.ts + a.dur;
      EXPECT_TRUE(disjoint || nested)
          << "lane " << tid << ": [" << a.name << " " << a.ts << "+"
          << a.dur << "] vs [" << b.name << " " << b.ts << "+" << b.dur
          << "]";
    }
    // thread_pool.chunk wraps each body invocation, so every lane that
    // ran test.work shows the enclosing chunk span too.
    if (work_tids.count(tid) > 0) {
      EXPECT_TRUE(std::any_of(lane.begin(), lane.end(), [](const Ev& e) {
        return e.name == std::string("thread_pool.chunk");
      })) << "lane " << tid;
    }
  }
}

/// The tentpole contract: a request's TraceContext crosses the pool. A
/// barrier holds all eight ParallelFor lanes open at once (so seven spans
/// ran on stolen/submitted tasks, not inline), and each lane also submits
/// a nested TaskGroup task. Every resulting span must carry the request's
/// trace id and sit in one well-parented tree under the root span.
TEST_F(TraceTest, ContextPropagatesAcrossPoolIntoOneTree) {
  constexpr int kLanes = 8;
  ThreadPool pool(kLanes);
  uint64_t root_trace = 0;
  uint64_t root_span = 0;
  {
    TraceContextScope request(TraceContext::NewRequest());
    TraceSpan root("test.request");
    root_trace = root.context().trace_id;
    root_span = root.context().span_id;
    TaskGroup nested(&pool);
    std::mutex mu;
    std::condition_variable cv;
    int arrived = 0;
    pool.ParallelFor(kLanes, [&](int64_t) {
      OD_TRACE_SPAN("test.work");
      nested.Submit([] { OD_TRACE_SPAN("test.nested"); });
      std::unique_lock<std::mutex> lock(mu);
      if (++arrived == kLanes) {
        cv.notify_all();
      } else {
        cv.wait(lock, [&] { return arrived == kLanes; });
      }
    });
    nested.Wait();
  }
  Tracer::Global().Disable();
  const std::string json = Tracer::Global().ExportChromeTrace();
  const auto events = ParseEvents(json);

  ASSERT_NE(root_trace, 0u);
  std::set<uint64_t> ids_in_trace;
  int work = 0, nested_spans = 0;
  for (const auto& e : events) {
    if (e.trace_id == root_trace) ids_in_trace.insert(e.span_id);
  }
  for (const auto& e : events) {
    if (e.name == "test.work") {
      ++work;
      EXPECT_EQ(e.trace_id, root_trace) << "work span escaped the trace";
    }
    if (e.name == "test.nested") {
      ++nested_spans;
      EXPECT_EQ(e.trace_id, root_trace) << "nested span escaped the trace";
    }
    if (e.trace_id != root_trace) continue;
    // Well-parented: every span in the trace either IS the root or hangs
    // off another recorded span of the same trace.
    if (e.span_id == root_span) {
      EXPECT_EQ(e.parent_id, 0u) << e.name;
    } else {
      EXPECT_TRUE(ids_in_trace.count(e.parent_id) > 0)
          << e.name << " parent " << e.parent_id << " not in trace";
    }
  }
  EXPECT_EQ(work, kLanes);
  EXPECT_EQ(nested_spans, kLanes);

  // The barrier forced 7 of the 8 bodies onto pool tasks: those spans
  // recorded on tids other than the root's, yet still in the root's tree.
  std::set<uint32_t> work_tids;
  uint32_t root_tid = 0;
  for (const auto& e : events) {
    if (e.name == "test.work") work_tids.insert(e.tid);
    if (e.name == "test.request") root_tid = e.tid;
  }
  EXPECT_EQ(static_cast<int>(work_tids.size()), kLanes);
  EXPECT_GT(work_tids.count(root_tid), 0u);  // the caller participates
}

/// Two requests sharing one pool, running concurrently: steals interleave
/// their tasks on the same workers, but the per-task context restore must
/// keep every span in its own request's trace — zero cross-contamination.
TEST_F(TraceTest, ConcurrentRequestsDoNotCrossContaminate) {
  ThreadPool pool(4);
  constexpr int kItems = 64;
  uint64_t traces[2] = {0, 0};
  auto run_request = [&](int which, const char* span_name) {
    TraceContextScope request(TraceContext::NewRequest());
    TraceSpan root(which == 0 ? "test.req_a" : "test.req_b");
    traces[which] = root.context().trace_id;
    pool.ParallelFor(kItems, [&](int64_t) {
      TraceSpan work(span_name);
      (void)work;
    });
  };
  std::thread a([&] { run_request(0, "test.work_a"); });
  std::thread b([&] { run_request(1, "test.work_b"); });
  a.join();
  b.join();
  Tracer::Global().Disable();
  const auto events = ParseEvents(Tracer::Global().ExportChromeTrace());

  ASSERT_NE(traces[0], 0u);
  ASSERT_NE(traces[1], 0u);
  ASSERT_NE(traces[0], traces[1]);
  int seen_a = 0, seen_b = 0;
  for (const auto& e : events) {
    if (e.name == "test.work_a") {
      ++seen_a;
      EXPECT_EQ(e.trace_id, traces[0]) << "A span bled into another trace";
    } else if (e.name == "test.work_b") {
      ++seen_b;
      EXPECT_EQ(e.trace_id, traces[1]) << "B span bled into another trace";
    }
  }
  EXPECT_EQ(seen_a, kItems);
  EXPECT_EQ(seen_b, kItems);
}

TEST_F(TraceTest, SpanContextSurvivesForDeferredWork) {
  // TraceSpan::context() hands out {trace, span}; installing it later —
  // even on another thread, after the span closed — parents new spans
  // under the original one (how plans re-enter their planning request).
  TraceContext deferred;
  uint64_t parent_span = 0;
  {
    TraceContextScope request(TraceContext::NewRequest());
    TraceSpan root("test.deferred_root");
    deferred = root.context();
    parent_span = deferred.span_id;
  }
  std::thread([&] {
    TraceContextScope adopt(deferred);
    OD_TRACE_SPAN("test.deferred_child");
  }).join();
  Tracer::Global().Disable();
  const auto events = ParseEvents(Tracer::Global().ExportChromeTrace());
  bool found = false;
  for (const auto& e : events) {
    if (e.name == "test.deferred_child") {
      found = true;
      EXPECT_EQ(e.trace_id, deferred.trace_id);
      EXPECT_EQ(e.parent_id, parent_span);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceTest, ClearDiscardsEverything) {
  {
    OD_TRACE_SPAN("test.gone");
  }
  Tracer::Global().Clear();
  const std::string json = Tracer::Global().ExportChromeTrace();
  EXPECT_EQ(json.find("test.gone"), std::string::npos);
  EXPECT_EQ(Tracer::Global().dropped_events(), 0);
}

#else  // !OD_TRACE_ENABLED

TEST(TraceTest, CompiledOutSpansAreNoOps) {
  // With OD_TRACE=OFF the macro must still parse in statement position.
  OD_TRACE_SPAN("test.never");
  SUCCEED();
}

#endif  // OD_TRACE_ENABLED

}  // namespace
}  // namespace common
}  // namespace od
