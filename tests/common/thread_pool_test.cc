// Tests for the shared concurrency layer: exact-once index coverage under
// chunked claiming, caller participation, exception propagation, pool reuse
// across batches, serialization of concurrent ParallelFor callers, and the
// work-stealing scheduler's edge cases — nested submission (the barrier
// deadlock regression), task groups that grow while they run, cancellation,
// and error propagation through TaskGroup::Wait.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace od {
namespace common {
namespace {

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  // ThreadPool(1) spawns no workers; the loop runs on the calling thread in
  // index order.
  ThreadPool pool(1);
  std::vector<int64_t> order;
  pool.ParallelFor(5, [&](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ZeroAndNegativeCountsAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t) { ++calls; });
  pool.ParallelFor(-3, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareConcurrency());
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int64_t> sum{0};
    const int64_t n = 100 + round;
    pool.ParallelFor(n, [&](int64_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), n * (n - 1) / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, FirstExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  std::atomic<int64_t> ran{0};
  try {
    pool.ParallelFor(1000, [&](int64_t i) {
      if (i == 17) throw std::runtime_error("boom");
      ran.fetch_add(1);
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // The batch aborts early but the pool stays usable.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(10, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ConcurrentCallersSerialize) {
  // Two threads issuing ParallelFor against one pool: both must complete
  // with full coverage (the pool serializes batches internally).
  ThreadPool pool(4);
  constexpr int64_t kN = 2000;
  std::vector<std::atomic<int>> a(kN), b(kN);
  for (int64_t i = 0; i < kN; ++i) {
    a[i].store(0);
    b[i].store(0);
  }
  std::thread other(
      [&] { pool.ParallelFor(kN, [&](int64_t i) { a[i].fetch_add(1); }); });
  pool.ParallelFor(kN, [&](int64_t i) { b[i].fetch_add(1); });
  other.join();
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(a[i].load(), 1);
    ASSERT_EQ(b[i].load(), 1);
  }
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerTasksCompletes) {
  // Regression for the nested-barrier deadlock: with a thread-per-batch
  // pool, every worker parks at the outer join while the inner loops wait
  // for a free thread, and nothing ever runs. On the task scheduler the
  // outer waiters *help* (Wait runs queued tasks), so the nest drains no
  // matter how the chunks land on workers.
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(8, [&](int64_t) {
    pool.ParallelFor(64, [&](int64_t i) { total.fetch_add(i); });
  });
  EXPECT_EQ(total.load(), 8 * (64 * 63 / 2));
}

TEST(ThreadPoolTest, ThreeLevelNestingCompletes) {
  // Depth is unbounded in principle; three levels on a two-thread pool
  // already exercises helping from inside helped tasks.
  ThreadPool pool(2);
  std::atomic<int64_t> leaves{0};
  pool.ParallelFor(4, [&](int64_t) {
    pool.ParallelFor(4, [&](int64_t) {
      pool.ParallelFor(4, [&](int64_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 64);
}

TEST(TaskGroupTest, TasksSubmittingIntoTheirOwnGroupAllComplete) {
  // The streaming-exchange pump pattern: a running task re-submits into
  // its own group (a parked producer rescheduling itself). Wait must not
  // return until the re-submitted work has run too.
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  std::function<void(int)> chain = [&](int depth) {
    ran.fetch_add(1);
    if (depth < 5) group.Submit([&chain, depth] { chain(depth + 1); });
  };
  for (int i = 0; i < 8; ++i) group.Submit([&chain] { chain(0); });
  group.Wait();
  EXPECT_EQ(ran.load(), 8 * 6);
}

TEST(TaskGroupTest, WaitRethrowsFirstErrorThenClears) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  for (int i = 0; i < 16; ++i) {
    group.Submit([] { throw std::runtime_error("task failed"); });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // The error was consumed: a second Wait (and the destructor) is clean.
  group.Wait();
}

TEST(TaskGroupTest, CancelMakesUnstartedTasksNoOps) {
  ThreadPool pool(3);  // two workers (the pool's caller is thread three)
  TaskGroup group(&pool);
  std::atomic<int> blockers_in{0};
  std::atomic<bool> release{false};
  std::atomic<int> counted{0};
  // Occupy both workers, then queue work behind them and cancel it before
  // letting the workers go. (The waiter below can't steal the counting
  // tasks early: it only starts helping inside Wait, after the Cancel.)
  for (int i = 0; i < 2; ++i) {
    group.Submit([&] {
      blockers_in.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (blockers_in.load() < 2) std::this_thread::yield();
  for (int i = 0; i < 100; ++i) {
    group.Submit([&] { counted.fetch_add(1); });
  }
  group.Cancel();
  release.store(true);
  group.Wait();
  EXPECT_EQ(counted.load(), 0);
}

TEST(TaskGroupTest, NullAndSingleThreadPoolsRunInline) {
  // No pool (and a one-thread pool, which spawns no workers) degrade to
  // immediate inline execution with errors still surfaced at Wait.
  for (int variant = 0; variant < 2; ++variant) {
    ThreadPool serial(1);
    TaskGroup group(variant == 0 ? nullptr : &serial);
    int runs = 0;
    group.Submit([&] { ++runs; });
    EXPECT_EQ(runs, 1);  // ran before Submit returned
    group.Submit([] { throw std::runtime_error("inline boom"); });
    EXPECT_THROW(group.Wait(), std::runtime_error);
  }
}

TEST(ThreadPoolTest, ExternalThreadsShareOnePool) {
  // Non-worker threads submit through the injection queue; workers (and
  // helping waiters) drain it. Several external submitters at once must
  // each see exactly their own group complete.
  ThreadPool pool(4);
  constexpr int kThreads = 3;
  constexpr int kTasksEach = 200;
  std::vector<std::atomic<int>> done(kThreads);
  for (auto& d : done) d.store(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TaskGroup group(&pool);
      for (int i = 0; i < kTasksEach; ++i) {
        group.Submit([&, t] { done[t].fetch_add(1); });
      }
      group.Wait();
      EXPECT_EQ(done[t].load(), kTasksEach);
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace common
}  // namespace od
