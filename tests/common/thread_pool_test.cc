// Tests for the shared concurrency layer: exact-once index coverage under
// chunked claiming, caller participation, exception propagation, pool reuse
// across batches, and serialization of concurrent ParallelFor callers.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace od {
namespace common {
namespace {

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  // ThreadPool(1) spawns no workers; the loop runs on the calling thread in
  // index order.
  ThreadPool pool(1);
  std::vector<int64_t> order;
  pool.ParallelFor(5, [&](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ZeroAndNegativeCountsAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t) { ++calls; });
  pool.ParallelFor(-3, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareConcurrency());
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int64_t> sum{0};
    const int64_t n = 100 + round;
    pool.ParallelFor(n, [&](int64_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), n * (n - 1) / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, FirstExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  std::atomic<int64_t> ran{0};
  try {
    pool.ParallelFor(1000, [&](int64_t i) {
      if (i == 17) throw std::runtime_error("boom");
      ran.fetch_add(1);
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // The batch aborts early but the pool stays usable.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(10, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ConcurrentCallersSerialize) {
  // Two threads issuing ParallelFor against one pool: both must complete
  // with full coverage (the pool serializes batches internally).
  ThreadPool pool(4);
  constexpr int64_t kN = 2000;
  std::vector<std::atomic<int>> a(kN), b(kN);
  for (int64_t i = 0; i < kN; ++i) {
    a[i].store(0);
    b[i].store(0);
  }
  std::thread other(
      [&] { pool.ParallelFor(kN, [&](int64_t i) { a[i].fetch_add(1); }); });
  pool.ParallelFor(kN, [&](int64_t i) { b[i].fetch_add(1); });
  other.join();
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(a[i].load(), 1);
    ASSERT_EQ(b[i].load(), 1);
  }
}

}  // namespace
}  // namespace common
}  // namespace od
