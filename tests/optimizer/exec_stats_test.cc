#include "optimizer/exec_stats.h"

#include <gtest/gtest.h>

#include <string>

namespace od {
namespace opt {
namespace {

/// Distinct prime-ish values per field so a cross-wired Merge (adding one
/// field into another) can't cancel out.
ExecStats MakeStats(int64_t base) {
  ExecStats s;
  s.rows_scanned = base + 1;
  s.rows_joined = base + 2;
  s.rows_output = base + 3;
  s.batches = base + 4;
  s.sorts = static_cast<int>(base + 5);
  s.sorts_elided = static_cast<int>(base + 6);
  s.joins = static_cast<int>(base + 7);
  s.joins_elided = static_cast<int>(base + 8);
  s.partitions_scanned = static_cast<int>(base + 9);
  s.fragments = static_cast<int>(base + 10);
  s.spills = static_cast<int>(base + 11);
  s.spilled_rows = base + 12;
  s.spilled_bytes = base + 13;
  s.exchange_peak_rows = base + 14;
  return s;
}

TEST(ExecStatsTest, MergeAddsEveryField) {
  ExecStats a = MakeStats(100);
  const ExecStats b = MakeStats(1000);
  a.Merge(b);
  EXPECT_EQ(a.rows_scanned, 101 + 1001);
  EXPECT_EQ(a.rows_joined, 102 + 1002);
  EXPECT_EQ(a.rows_output, 103 + 1003);
  EXPECT_EQ(a.batches, 104 + 1004);
  EXPECT_EQ(a.sorts, 105 + 1005);
  EXPECT_EQ(a.sorts_elided, 106 + 1006);
  EXPECT_EQ(a.joins, 107 + 1007);
  EXPECT_EQ(a.joins_elided, 108 + 1008);
  EXPECT_EQ(a.partitions_scanned, 109 + 1009);
  EXPECT_EQ(a.fragments, 110 + 1010);
  EXPECT_EQ(a.spills, 111 + 1011);
  EXPECT_EQ(a.spilled_rows, 112 + 1012);
  EXPECT_EQ(a.spilled_bytes, 113 + 1013);
  // Watermark semantics: the larger side wins, sums would double-count.
  EXPECT_EQ(a.exchange_peak_rows, 1014);
}

TEST(ExecStatsTest, PeakRowsMergesByMaxEitherDirection) {
  ExecStats a;
  a.exchange_peak_rows = 500;
  ExecStats b;
  b.exchange_peak_rows = 40;
  a.Merge(b);
  EXPECT_EQ(a.exchange_peak_rows, 500);
}

TEST(ExecStatsTest, MergeWithDefaultIsIdentity) {
  ExecStats a = MakeStats(7);
  const ExecStats before = a;
  a.Merge(ExecStats{});
  EXPECT_EQ(a.ToString(), before.ToString());
}

TEST(ExecStatsTest, ToStringNamesEveryField) {
  const std::string s = MakeStats(200).ToString();
  EXPECT_NE(s.find("rows_scanned=201"), std::string::npos) << s;
  EXPECT_NE(s.find("rows_joined=202"), std::string::npos) << s;
  EXPECT_NE(s.find("rows_output=203"), std::string::npos) << s;
  EXPECT_NE(s.find("batches=204"), std::string::npos) << s;
  EXPECT_NE(s.find("sorts=205"), std::string::npos) << s;
  EXPECT_NE(s.find("sorts_elided=206"), std::string::npos) << s;
  EXPECT_NE(s.find("joins=207"), std::string::npos) << s;
  EXPECT_NE(s.find("joins_elided=208"), std::string::npos) << s;
  EXPECT_NE(s.find("partitions_scanned=209"), std::string::npos) << s;
  EXPECT_NE(s.find("fragments=210"), std::string::npos) << s;
  EXPECT_NE(s.find("spills=211"), std::string::npos) << s;
  EXPECT_NE(s.find("spilled_rows=212"), std::string::npos) << s;
  EXPECT_NE(s.find("spilled_bytes=213"), std::string::npos) << s;
  EXPECT_NE(s.find("exchange_peak_rows=214"), std::string::npos) << s;
}

}  // namespace
}  // namespace opt
}  // namespace od
