// EXPLAIN ANALYZE: after an Execute, every plan node reports its actual
// wall-clock and rows next to the estimates, the cost-model share error is
// printed, and the OD proofs behind each elided enforcer close the report.
// The same fixtures drive the parallel-trace and metrics-export acceptance
// checks, because they all observe one executed query.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "engine/index.h"
#include "engine/ops.h"
#include "engine/partition.h"
#include "optimizer/planner.h"
#include "theory/theory.h"
#include "warehouse/date_dim.h"
#include "warehouse/queries.h"
#include "warehouse/star_schema.h"
#include "warehouse/tax_schedule.h"

namespace od {
namespace opt {
namespace {

using engine::Table;

bool Mentions(const std::string& report, const std::string& token) {
  return report.find(token) != std::string::npos;
}

class TaxExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    taxes_ = warehouse::GenerateTaxTable(/*num_rows=*/20000,
                                         /*max_income=*/250000, /*seed=*/7);
    index_ = std::make_unique<engine::OrderedIndex>(
        &taxes_, engine::SortSpec{warehouse::TaxColumns().income});
    ods_ = std::make_shared<theory::Theory>(warehouse::TaxOds());
  }
  Table taxes_;
  std::unique_ptr<engine::OrderedIndex> index_;
  std::shared_ptr<theory::Theory> ods_;
};

TEST_F(TaxExplainAnalyzeTest, UnexecutedPlanRendersEstimatesOnly) {
  LogicalQuery q = warehouse::TaxOrderByQuery(&taxes_, index_.get(), ods_);
  PhysicalPlan plan = PlanQuery(q);
  const std::string report = plan.ExplainAnalyze();
  EXPECT_TRUE(Mentions(report, "plan not executed")) << report;
  EXPECT_TRUE(Mentions(report, "est_rows")) << report;
  EXPECT_FALSE(Mentions(report, "actual_ms=")) << report;
}

TEST_F(TaxExplainAnalyzeTest, ReportShowsActualsErrorsAndProofs) {
  LogicalQuery q = warehouse::TaxOrderByQuery(&taxes_, index_.get(), ods_);
  PhysicalPlan plan = PlanQuery(q);
  ExecStats stats;
  const std::string report = ExplainAnalyze(plan, &stats);

  EXPECT_TRUE(Mentions(report, "EXPLAIN ANALYZE (total ")) << report;
  EXPECT_TRUE(Mentions(report, "actual_ms=")) << report;
  EXPECT_TRUE(Mentions(report, "actual_rows=20000")) << report;
  EXPECT_TRUE(Mentions(report, "rows_err=")) << report;
  EXPECT_TRUE(Mentions(report, "cost_err=x")) << report;

  // The elided ORDER BY sort is named with its OD proof, verbatim.
  ASSERT_GE(plan.sorts_elided(), 1);
  ASSERT_FALSE(plan.proofs().empty());
  for (const std::string& proof : plan.proofs()) {
    EXPECT_TRUE(Mentions(report, proof)) << "missing proof: " << proof;
  }
  EXPECT_EQ(stats.sorts, 0);
  EXPECT_GE(stats.rows_output, taxes_.num_rows());
}

TEST_F(TaxExplainAnalyzeTest, PerfectEstimatesShowZeroRowError) {
  LogicalQuery q = warehouse::TaxOrderByQuery(&taxes_, index_.get(), ods_);
  PhysicalPlan plan = PlanQuery(q);
  ExecStats stats;
  const std::string report = ExplainAnalyze(plan, &stats);
  // A full index scan has an exact cardinality estimate: 20000 rows
  // estimated, 20000 produced, 0% row error on that node.
  EXPECT_TRUE(Mentions(report, "rows_err=+0%")) << report;
}

class DateExplainAnalyzeTest : public ::testing::Test {
 protected:
  static constexpr int kStartYear = 1998;
  static constexpr int kYears = 4;
  void SetUp() override {
    dim_ = warehouse::GenerateDateDim(kStartYear, kYears);
    const int64_t first_sk = dim_.col(0).Int(0);
    fact_ = warehouse::GenerateStoreSales(/*num_rows=*/30000, first_sk,
                                          dim_.num_rows(), /*num_items=*/50,
                                          /*num_stores=*/10, /*seed=*/42);
    index_ = std::make_unique<engine::OrderedIndex>(&fact_,
                                                    engine::SortSpec{0});
    parts_ = std::make_unique<engine::PartitionedTable>(
        engine::PartitionedTable::PartitionByRange(fact_, 0, 16));
    dim_ods_ = std::make_shared<theory::Theory>(warehouse::DateDimOds());
  }
  LogicalQuery DailySales() {
    return warehouse::DailySalesQuery(&fact_, &dim_, index_.get(),
                                      parts_.get(), dim_ods_, kStartYear + 1);
  }
  Table dim_, fact_;
  std::unique_ptr<engine::OrderedIndex> index_;
  std::unique_ptr<engine::PartitionedTable> parts_;
  std::shared_ptr<theory::Theory> dim_ods_;
};

TEST_F(DateExplainAnalyzeTest, DailySalesNamesEveryElisionProof) {
  PhysicalPlan plan = PlanQuery(DailySales());
  ASSERT_EQ(plan.joins_elided(), 1);
  ASSERT_GE(plan.sorts_elided(), 2);
  const std::string report = ExplainAnalyze(plan);
  // Every elision (the surrogate-key join, the stream-agg contiguity, the
  // ORDER BY) appears in the report with the OD proof that justified it.
  EXPECT_EQ(static_cast<int>(plan.proofs().size()),
            plan.joins_elided() + plan.sorts_elided());
  for (const std::string& proof : plan.proofs()) {
    EXPECT_TRUE(Mentions(report, proof)) << "missing proof: " << proof;
  }
  EXPECT_TRUE(Mentions(report, "actual_rows=365")) << report;
  EXPECT_TRUE(Mentions(report, "actual_ms=")) << report;
  EXPECT_TRUE(Mentions(report, "cost_err=x")) << report;
}

TEST_F(DateExplainAnalyzeTest, ParallelRunExportsFragmentSpansPerLane) {
  common::ThreadPool pool(4);
  CostModel cm;
  cm.fragment_startup = 0.0;  // make the fan-out pay at this table size
  PlanOptions opts;
  opts.dop = 4;
  opts.pool = &pool;
  PhysicalPlan plan = PlanQuery(DailySales(), cm, opts);
  ASSERT_TRUE(Mentions(plan.Explain(), "Exchange") ||
              Mentions(plan.Explain(), "ParallelHashAggregate"))
      << plan.Explain();

  common::Tracer& tracer = common::Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  ExecStats stats;
  const std::string report = ExplainAnalyze(plan, &stats);
  tracer.Disable();

  EXPECT_GE(stats.fragments, opts.dop);
  EXPECT_TRUE(Mentions(report, "actual_ms=")) << report;

#if OD_TRACE_ENABLED
  const std::string trace = tracer.ExportChromeTrace();
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_TRUE(Mentions(trace, "\"exchange.fragment\""))
      << trace.substr(0, 500);
  // The fragment-drain histogram saw every fragment this Execute drained.
  const auto snap = common::MetricRegistry::Global().Snapshot();
  const auto it = snap.histograms.find("od_exec_fragment_drain_us");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_GE(it->second.count, static_cast<int64_t>(opts.dop));
#endif
  tracer.Clear();
}

TEST_F(DateExplainAnalyzeTest, LiveRegistrySnapshotRoundTripsBothFormats) {
  // Execute a real query so the registry holds engine-written metrics
  // (prover searches, planner enumerations, discovery counters from other
  // tests in this binary...), then check the full live snapshot survives
  // both export formats losslessly.
  PhysicalPlan plan = PlanQuery(DailySales());
  plan.Execute(nullptr);
  common::MetricRegistry& reg = common::MetricRegistry::Global();
  const common::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_FALSE(snap.counters.empty());
  EXPECT_TRUE(snap.counters.count("od_planner_plans_enumerated_total") > 0);
  EXPECT_TRUE(common::MetricRegistry::FromJson(
                  common::MetricRegistry::ToJson(snap)) == snap);
  EXPECT_TRUE(common::MetricRegistry::FromPrometheusText(
                  common::MetricRegistry::ToPrometheusText(snap)) == snap);
}

}  // namespace
}  // namespace opt
}  // namespace od
