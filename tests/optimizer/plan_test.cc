#include "optimizer/plan.h"

#include <gtest/gtest.h>

#include "optimizer/date_rewrite.h"
#include "warehouse/date_dim.h"
#include "warehouse/queries.h"
#include "warehouse/star_schema.h"

namespace od {
namespace opt {
namespace {

using engine::DataType;
using engine::Schema;
using engine::Table;

Table SmallTable() {
  Schema s;
  s.Add("k", DataType::kInt64);
  s.Add("v", DataType::kDouble);
  Table t(s);
  for (int64_t i = 0; i < 10; ++i) {
    t.AppendRow({Value(i % 3), Value(static_cast<double>(i))});
  }
  return t;
}

TEST(PlanTest, ScanFilterSortAgg) {
  Table t = SmallTable();
  ExecStats stats;
  PlanPtr plan = HashAggNode(
      FilterNode(TableScan(&t),
                 {engine::Predicate{0, engine::Predicate::Op::kGe, Value(1)}}),
      {0}, {{engine::AggSpec::Kind::kSum, 1, "sum_v"}});
  Table result = plan->Execute(&stats);
  EXPECT_EQ(result.num_rows(), 2);  // k ∈ {1, 2}
  EXPECT_EQ(stats.rows_scanned, 10);
  EXPECT_EQ(stats.sorts, 0);

  ExecStats stats2;
  PlanPtr sorted = SortNode(TableScan(&t), {0, 1});
  Table sorted_result = sorted->Execute(&stats2);
  EXPECT_EQ(stats2.sorts, 1);
  EXPECT_TRUE(engine::IsSortedBy(sorted_result, {0, 1}));
}

TEST(PlanTest, StreamVsHashAggEquivalentOnSortedInput) {
  Table t = SmallTable();
  ExecStats s1, s2;
  Table a = HashAggNode(TableScan(&t), {0},
                        {{engine::AggSpec::Kind::kSum, 1, "s"}})
                ->Execute(&s1);
  Table b = StreamAggNode(SortNode(TableScan(&t), {0}), {0},
                          {{engine::AggSpec::Kind::kSum, 1, "s"}})
                ->Execute(&s2);
  EXPECT_TRUE(engine::SameRowMultiset(a, b));
  EXPECT_EQ(s2.sorts, 1);
}

TEST(PlanTest, DescribeMentionsShape) {
  Table t = SmallTable();
  PlanPtr plan = HashAggNode(SortNode(TableScan(&t), {0}), {0}, {});
  const std::string desc = plan->Describe();
  EXPECT_NE(desc.find("HashAgg"), std::string::npos);
  EXPECT_NE(desc.find("Sort"), std::string::npos);
  EXPECT_NE(desc.find("TableScan"), std::string::npos);
}

class DateRewriteTest : public ::testing::Test {
 protected:
  static constexpr int kStartYear = 1998;
  static constexpr int kYears = 4;
  void SetUp() override {
    dim_ = warehouse::GenerateDateDim(kStartYear, kYears);
    const int64_t first_sk = dim_.col(0).Int(0);
    fact_ = warehouse::GenerateStoreSales(/*num_rows=*/20000, first_sk,
                                          dim_.num_rows(), /*num_items=*/50,
                                          /*num_stores=*/10, /*seed=*/42);
  }
  engine::Table dim_;
  engine::Table fact_;
};

TEST_F(DateRewriteTest, ApplicabilityRequiresSurrogateOd) {
  OrderReasoner with_od(warehouse::DateDimOds());
  const warehouse::DateDimColumns d;
  EXPECT_TRUE(RewriteApplicable(with_od, d.d_date_sk, d.d_date));
  OrderReasoner without((DependencySet()));
  EXPECT_FALSE(RewriteApplicable(without, d.d_date_sk, d.d_date));
}

TEST_F(DateRewriteTest, SurrogateRangeMatchesPredicate) {
  const warehouse::DateDimColumns d;
  const std::vector<engine::Predicate> preds{
      {d.d_year, engine::Predicate::Op::kEq, Value(int64_t{kStartYear + 1})}};
  auto range = SurrogateKeyRange(dim_, d.d_date_sk, preds);
  ASSERT_TRUE(range.has_value());
  // A non-leap/leap year has 365/366 days; 1999 has 365.
  EXPECT_EQ(range->second - range->first + 1, 365);
  EXPECT_TRUE(QualifyingRowsContiguous(dim_, d.d_date_sk, preds));
}

TEST_F(DateRewriteTest, AllThirteenQueriesRewriteCorrectly) {
  const warehouse::DateDimColumns d;
  engine::OrderedIndex fact_index(&fact_, {0});
  const auto queries = warehouse::TpcdsDateQueries(kStartYear, kYears);
  ASSERT_EQ(queries.size(), 13u);
  for (const auto& q : queries) {
    // Precondition: contiguity of the qualifying dimension rows.
    EXPECT_TRUE(QualifyingRowsContiguous(dim_, d.d_date_sk,
                                         q.dim_predicates))
        << q.name;
    auto range = SurrogateKeyRange(dim_, d.d_date_sk, q.dim_predicates);
    ASSERT_TRUE(range.has_value()) << q.name;

    ExecStats base_stats, rewrite_stats;
    Table baseline =
        BuildBaselinePlan(&fact_, &dim_, q)->Execute(&base_stats);
    Table rewritten = BuildRewrittenPlan(&fact_index, q, *range)
                          ->Execute(&rewrite_stats);
    EXPECT_TRUE(engine::SameRowMultiset(baseline, rewritten)) << q.name;
    // The rewritten plan performs no join and scans fewer rows.
    EXPECT_EQ(rewrite_stats.joins, 0) << q.name;
    EXPECT_EQ(base_stats.joins, 1) << q.name;
    EXPECT_LT(rewrite_stats.rows_scanned, base_stats.rows_scanned) << q.name;
  }
}

TEST_F(DateRewriteTest, PartitionPruning) {
  const warehouse::DateDimColumns d;
  engine::PartitionedTable parts =
      engine::PartitionedTable::PartitionByRange(fact_, 0, 16);
  const auto queries = warehouse::TpcdsDateQueries(kStartYear, kYears);
  const auto& q = queries[0];  // a one-year predicate over four years
  auto range = SurrogateKeyRange(dim_, d.d_date_sk, q.dim_predicates);
  ASSERT_TRUE(range.has_value());

  ExecStats base_stats, rewrite_stats;
  Table baseline = BuildBaselinePartitionedPlan(&parts, &dim_, q)
                       ->Execute(&base_stats);
  Table rewritten = BuildRewrittenPartitionedPlan(&parts, q, *range)
                        ->Execute(&rewrite_stats);
  EXPECT_TRUE(engine::SameRowMultiset(baseline, rewritten));
  EXPECT_EQ(base_stats.partitions_scanned, 16);
  EXPECT_LT(rewrite_stats.partitions_scanned, 16 / 2);
}

}  // namespace
}  // namespace opt
}  // namespace od
