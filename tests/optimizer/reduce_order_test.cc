#include "optimizer/reduce_order.h"

#include <gtest/gtest.h>

#include "core/parser.h"
#include "optimizer/order_property.h"

namespace od {
namespace opt {
namespace {

prover::Prover MakeProver(NameTable* names, const std::string& ods) {
  Parser parser(names);
  auto m = parser.ParseSet(ods);
  EXPECT_TRUE(m.has_value()) << parser.error();
  return prover::Prover(*m);
}

TEST(ReduceOrderTest, FdEliminatesTrailingQuarter) {
  // ReduceOrder (FD-only, [17]): year, month, quarter → year, month,
  // because {month} functionally determines quarter and precedes it.
  NameTable names;
  prover::Prover pv = MakeProver(&names, "[month] -> [quarter]");
  const AttributeId year = names.Intern("year");
  const AttributeId month = names.Lookup("month");
  const AttributeId quarter = names.Lookup("quarter");
  auto result = ReduceOrder(pv, AttributeList({year, month, quarter}));
  EXPECT_EQ(result.reduced, AttributeList({year, month}));
  EXPECT_EQ(result.eliminated(AttributeList({year, month, quarter})), 1);
}

TEST(ReduceOrderTest, FdCannotEliminateInterveningQuarter) {
  // The Example 1 failure of FD-only rewriting: quarter sits BEFORE month,
  // so no prefix determines it; ReduceOrder keeps all three.
  NameTable names;
  prover::Prover pv = MakeProver(&names, "[month] -> [quarter]");
  const AttributeId year = names.Intern("year");
  const AttributeId quarter = names.Lookup("quarter");
  const AttributeId month = names.Lookup("month");
  const AttributeList order({year, quarter, month});
  auto result = ReduceOrder(pv, order);
  EXPECT_EQ(result.reduced, order);
}

TEST(ReduceOrderPlusTest, OdEliminatesInterveningQuarter) {
  // ReduceOrder+ (the paper): the postfix [month] ORDERS quarter, so
  // year, quarter, month → year, month (Theorem 8, Left Eliminate).
  NameTable names;
  prover::Prover pv = MakeProver(&names, "[month] -> [quarter]");
  const AttributeId year = names.Intern("year");
  const AttributeId quarter = names.Lookup("quarter");
  const AttributeId month = names.Lookup("month");
  auto result = ReduceOrderPlus(pv, AttributeList({year, quarter, month}));
  EXPECT_EQ(result.reduced, AttributeList({year, month}));
  ASSERT_FALSE(result.log.empty());
  EXPECT_NE(result.log[0].find("Left Eliminate"), std::string::npos);
}

TEST(ReduceOrderPlusTest, PaperListSensitivity) {
  // Section 2.3: given D ↦ B, ABD reduces to AD but ABCD does NOT reduce —
  // the intervening C invalidates the rewrite.
  NameTable names;
  prover::Prover pv = MakeProver(&names, "[d] -> [b]");
  const AttributeId a = names.Intern("a");
  const AttributeId b = names.Lookup("b");
  const AttributeId c = names.Intern("c");
  const AttributeId d = names.Lookup("d");
  EXPECT_EQ(ReduceOrderPlus(pv, AttributeList({a, b, d})).reduced,
            AttributeList({a, d}));
  EXPECT_EQ(ReduceOrderPlus(pv, AttributeList({a, b, c, d})).reduced,
            AttributeList({a, b, c, d}));
  // But D ↦ BC would allow ABCD → AD (the paper's remark).
  prover::Prover pv2 = MakeProver(&names, "[d] -> [b, c]");
  EXPECT_EQ(ReduceOrderPlus(pv2, AttributeList({a, b, c, d})).reduced,
            AttributeList({a, d}));
}

TEST(ReduceOrderPlusTest, DuplicatesRemovedByNormalization) {
  NameTable names;
  prover::Prover pv = MakeProver(&names, "");
  const AttributeList order({0, 1, 0, 2, 1});
  auto result = ReduceOrderPlus(pv, order);
  EXPECT_EQ(result.reduced, AttributeList({0, 1, 2}));
}

TEST(ReduceOrderPlusTest, ConstantAttributesDrop) {
  // A constant attribute is functionally determined by the empty prefix.
  NameTable names;
  prover::Prover pv = MakeProver(&names, "[] -> [k]");
  const AttributeId k = names.Lookup("k");
  const AttributeId a = names.Intern("a");
  auto result = ReduceOrderPlus(pv, AttributeList({k, a}));
  EXPECT_EQ(result.reduced, AttributeList({a}));
}

TEST(ReduceOrderPlusTest, CascadingElimination) {
  // income orders bracket and tax: ORDER BY bracket, tax, income collapses
  // to income alone (Example 5 + Left Eliminate applied twice).
  NameTable names;
  prover::Prover pv =
      MakeProver(&names, "[income] -> [bracket]; [income] -> [tax]");
  const AttributeId income = names.Lookup("income");
  const AttributeId bracket = names.Lookup("bracket");
  const AttributeId tax = names.Lookup("tax");
  auto result = ReduceOrderPlus(pv, AttributeList({bracket, tax, income}));
  EXPECT_EQ(result.reduced, AttributeList({income}));
}

TEST(ReduceGroupByTest, FdEquivalenceOnly) {
  NameTable names;
  prover::Prover pv = MakeProver(&names, "[month] -> [quarter]");
  const AttributeId year = names.Intern("year");
  const AttributeId quarter = names.Lookup("quarter");
  const AttributeId month = names.Lookup("month");
  // Group-by is set-based: quarter is redundant given month.
  EXPECT_EQ(ReduceGroupBy(pv, AttributeSet({year, quarter, month})),
            AttributeSet({year, month}));
  // month is NOT redundant given quarter (quarter does not determine it).
  EXPECT_EQ(ReduceGroupBy(pv, AttributeSet({quarter, month})),
            AttributeSet({month}));
}

TEST(OrderReasonerTest, ProvidesVsEquivalent) {
  NameTable names;
  Parser parser(&names);
  auto m = parser.ParseSet("[month] -> [quarter]");
  ASSERT_TRUE(m.has_value());
  OrderReasoner reasoner(*m);
  const engine::ColumnId year = names.Intern("year");
  const engine::ColumnId quarter = names.Lookup("quarter");
  const engine::ColumnId month = names.Lookup("month");
  // A [year, month] stream provides ORDER BY [year, quarter, month] and
  // ORDER BY [year, quarter]; the converse directions do not all hold.
  EXPECT_TRUE(reasoner.Provides({year, month}, {year, quarter, month}));
  EXPECT_TRUE(reasoner.Provides({year, month}, {year, quarter}));
  EXPECT_TRUE(reasoner.Equivalent({year, month}, {year, quarter, month}));
  EXPECT_FALSE(reasoner.Provides({year, quarter}, {year, month}));
  EXPECT_FALSE(reasoner.Equivalent({year, quarter}, {year, month}));
}

TEST(OrderReasonerTest, GroupContiguity) {
  NameTable names;
  Parser parser(&names);
  auto m = parser.ParseSet("[month] -> [quarter]");
  ASSERT_TRUE(m.has_value());
  OrderReasoner reasoner(*m);
  const engine::ColumnId year = names.Intern("year");
  const engine::ColumnId quarter = names.Lookup("quarter");
  const engine::ColumnId month = names.Lookup("month");
  // Sorting by [year, month] makes [year, quarter, month] groups
  // contiguous (quarter is determined), enabling StreamGroupBy.
  EXPECT_TRUE(
      reasoner.GroupsContiguousUnder({year, month}, {year, quarter, month}));
  // Sorting by year alone does not make month groups contiguous.
  EXPECT_FALSE(reasoner.GroupsContiguousUnder({year}, {year, month}));
}

}  // namespace
}  // namespace opt
}  // namespace od
