#include "optimizer/monotonicity.h"

#include <random>

#include <gtest/gtest.h>

#include "core/relation.h"
#include "core/witness.h"

namespace od {
namespace opt {
namespace {

constexpr AttributeId A = 0, B = 1, G = 2;

TEST(MonotonicityTest, PaperExpressionFromRelatedWork) {
  // The paper's Section 5 example (from [12]): G = A/100 + A − 3 is
  // monotone in A, hence [A] ↦ [G] — in fact strictly increasing, so
  // [A] ↔ [G].
  ExprPtr g = Sub(Add(DivConst(Column(A), 100.0), Column(A)), Constant(3.0));
  EXPECT_EQ(g->InDirectionOf(A), Monotonicity::kStrictlyIncreasing);
  DependencySet ods = DeriveGeneratedColumnOds(G, g);
  EXPECT_TRUE(ods.Contains(OrderDependency(AttributeList({A}),
                                           AttributeList({G}))));
  EXPECT_TRUE(ods.Contains(OrderDependency(AttributeList({G}),
                                           AttributeList({A}))));
}

TEST(MonotonicityTest, YearFunction) {
  // Section 2.2: given a datestamp column d, [d] ↦ [YEAR(d)] — monotone
  // but not injective, so only the one direction is derived.
  ExprPtr y = Year(Column(A));
  EXPECT_EQ(y->InDirectionOf(A), Monotonicity::kNonDecreasing);
  DependencySet ods = DeriveGeneratedColumnOds(G, y);
  EXPECT_EQ(ods.Size(), 1);
  EXPECT_TRUE(ods.Contains(OrderDependency(AttributeList({A}),
                                           AttributeList({G}))));
}

TEST(MonotonicityTest, StepFunctionLikeTaxBrackets) {
  // Example 5 with brackets as a CASE expression: a non-decreasing step.
  ExprPtr bracket = Step(Column(A));
  EXPECT_EQ(bracket->InDirectionOf(A), Monotonicity::kNonDecreasing);
  DependencySet ods = DeriveGeneratedColumnOds(G, bracket);
  EXPECT_TRUE(ods.Contains(OrderDependency(AttributeList({A}),
                                           AttributeList({G}))));
}

TEST(MonotonicityTest, NegationAndNegativeScaling) {
  EXPECT_EQ(Negate(Column(A))->InDirectionOf(A),
            Monotonicity::kNonIncreasing);
  EXPECT_EQ(Mul(Column(A), Constant(-2.0))->InDirectionOf(A),
            Monotonicity::kNonIncreasing);
  EXPECT_EQ(DivConst(Column(A), -4.0)->InDirectionOf(A),
            Monotonicity::kNonIncreasing);
  // Descending shapes derive nothing (polarized ODs are out of scope).
  EXPECT_EQ(DeriveGeneratedColumnOds(G, Negate(Column(A))).Size(), 0);
}

TEST(MonotonicityTest, ConflictingDirectionsUnknown) {
  // A - A is constant-valued but the analysis is syntactic: inc + dec of
  // the SAME column is unknown (sound, conservative).
  ExprPtr e = Sub(Column(A), Column(A));
  EXPECT_EQ(e->InDirectionOf(A), Monotonicity::kUnknown);
  EXPECT_EQ(DeriveGeneratedColumnOds(G, e).Size(), 0);
  // A * A likewise unknown (not monotone over negatives).
  EXPECT_EQ(Mul(Column(A), Column(A))->InDirectionOf(A),
            Monotonicity::kUnknown);
}

TEST(MonotonicityTest, MultiInputConservative) {
  ExprPtr e = Add(Column(A), Column(B));
  EXPECT_EQ(e->InDirectionOf(A), Monotonicity::kStrictlyIncreasing);
  EXPECT_EQ(e->InDirectionOf(B), Monotonicity::kStrictlyIncreasing);
  // Two inputs: no single-column OD is derived.
  EXPECT_EQ(DeriveGeneratedColumnOds(G, e).Size(), 0);
}

TEST(MonotonicityTest, ConstantExpression) {
  DependencySet ods =
      DeriveGeneratedColumnOds(G, Add(Constant(1.0), Constant(2.0)));
  EXPECT_EQ(ods.Size(), 1);
  EXPECT_TRUE(ods.Contains(OrderDependency(AttributeList(),
                                           AttributeList({G}))));
}

TEST(MonotonicityTest, InputsAndPrinting) {
  ExprPtr e = Sub(Add(DivConst(Column(A), 100.0), Column(A)), Constant(3.0));
  EXPECT_EQ(e->Inputs(), AttributeSet{A});
  const std::string text = e->ToString();
  EXPECT_NE(text.find("/"), std::string::npos);
  EXPECT_NE(text.find("+"), std::string::npos);
}

// Property test: derived ODs hold on materialized data — generate rows,
// compute the generated column by evaluation, and check with the witness
// machinery (the guarantee [12] relies on).
class MonotonicityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MonotonicityPropertyTest, DerivedOdsHoldOnData) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> val(-500.0, 500.0);
  const std::vector<ExprPtr> exprs = {
      Sub(Add(DivConst(Column(A), 100.0), Column(A)), Constant(3.0)),
      Year(Column(A)),
      Step(Column(A)),
      Mul(Column(A), Constant(2.5)),
      Add(Mul(Column(A), Constant(3.0)), Constant(7.0)),
  };
  for (const auto& expr : exprs) {
    // Relation over attributes {A, B, G} with G := expr(A).
    Relation r(3);
    for (int i = 0; i < 40; ++i) {
      std::vector<double> inputs = {val(rng), val(rng), 0.0};
      r.AddRow({Value(inputs[A]), Value(inputs[B]),
                Value(expr->Eval(inputs))});
    }
    const DependencySet derived = DeriveGeneratedColumnOds(G, expr);
    EXPECT_GT(derived.Size(), 0) << expr->ToString();
    for (const auto& dep : derived.ods()) {
      EXPECT_TRUE(Satisfies(r, dep))
          << expr->ToString() << " derived " << dep.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityPropertyTest,
                         ::testing::Range(1, 7));

}  // namespace
}  // namespace opt
}  // namespace od
