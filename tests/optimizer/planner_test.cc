// The cost-based physical planner: enforcer elision must be *proven* (OD
// reasoning), every chosen plan must agree with the naive materializing
// plan, and the order-aware warehouse queries must execute with zero sorts
// when the ODs hold.

#include "optimizer/planner.h"

#include <gtest/gtest.h>

#include <memory>

#include "engine/index.h"
#include "engine/ops.h"
#include "engine/partition.h"
#include "optimizer/date_rewrite.h"
#include "theory/theory.h"
#include "warehouse/date_dim.h"
#include "warehouse/queries.h"
#include "warehouse/star_schema.h"
#include "warehouse/tax_schedule.h"

namespace od {
namespace opt {
namespace {

using engine::AggSpec;
using engine::DataType;
using engine::Predicate;
using engine::Schema;
using engine::Table;

bool ExplainMentions(const PhysicalPlan& plan, const std::string& token) {
  return plan.Explain().find(token) != std::string::npos;
}

class TaxPlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    taxes_ = warehouse::GenerateTaxTable(/*num_rows=*/20000,
                                         /*max_income=*/250000, /*seed=*/7);
    index_ = std::make_unique<engine::OrderedIndex>(
        &taxes_, engine::SortSpec{warehouse::TaxColumns().income});
  }
  Table taxes_;
  std::unique_ptr<engine::OrderedIndex> index_;
};

TEST_F(TaxPlannerTest, OdsElideTheOrderBySort) {
  const warehouse::TaxColumns t;
  auto ods = std::make_shared<theory::Theory>(warehouse::TaxOds());
  LogicalQuery q = warehouse::TaxOrderByQuery(&taxes_, index_.get(), ods);
  PhysicalPlan plan = PlanQuery(q);
  // The income-ordered index stream provably satisfies ORDER BY bracket,
  // tax ([income] ↦ [bracket, tax] by Union): no Sort node anywhere.
  EXPECT_FALSE(ExplainMentions(plan, "Sort"));
  EXPECT_TRUE(ExplainMentions(plan, "IndexRangeScan"));
  EXPECT_GE(plan.sorts_elided(), 1);
  ASSERT_FALSE(plan.proofs().empty());

  ExecStats stats;
  Table out = plan.Execute(&stats);
  EXPECT_EQ(stats.sorts, 0);
  EXPECT_GE(stats.sorts_elided, 1);
  EXPECT_EQ(out.num_rows(), taxes_.num_rows());
  EXPECT_TRUE(engine::IsSortedBy(out, {t.bracket, t.tax}));
  EXPECT_TRUE(engine::SameRowMultiset(taxes_, out));
}

TEST_F(TaxPlannerTest, WithoutOdsThePlanSorts) {
  const warehouse::TaxColumns t;
  LogicalQuery q =
      warehouse::TaxOrderByQuery(&taxes_, index_.get(), /*tax_ods=*/nullptr);
  PhysicalPlan plan = PlanQuery(q);
  EXPECT_TRUE(ExplainMentions(plan, "Sort"));
  ExecStats stats;
  Table out = plan.Execute(&stats);
  EXPECT_EQ(stats.sorts, 1);
  EXPECT_TRUE(engine::IsSortedBy(out, {t.bracket, t.tax}));
  EXPECT_TRUE(engine::SameRowMultiset(taxes_, out));
}

TEST_F(TaxPlannerTest, ExplainShowsEstimatedAndActualRows) {
  auto ods = std::make_shared<theory::Theory>(warehouse::TaxOds());
  LogicalQuery q = warehouse::TaxOrderByQuery(&taxes_, index_.get(), ods);
  PhysicalPlan plan = PlanQuery(q);
  EXPECT_TRUE(ExplainMentions(plan, "est_rows"));
  EXPECT_TRUE(ExplainMentions(plan, "est_cost"));
  EXPECT_FALSE(ExplainMentions(plan, "actual_rows"));
  ExecStats stats;
  plan.Execute(&stats);
  EXPECT_TRUE(ExplainMentions(plan, "actual_rows=20000"));
}

TEST_F(TaxPlannerTest, TopKUnderLimit) {
  const warehouse::TaxColumns t;
  LogicalQuery q =
      warehouse::TaxOrderByQuery(&taxes_, index_.get(), /*tax_ods=*/nullptr);
  q.tables[0].index = nullptr;  // force a plain scan: sort genuinely needed
  q.limit = 50;
  PhysicalPlan plan = PlanQuery(q);
  EXPECT_TRUE(ExplainMentions(plan, "TopK"));
  ExecStats stats;
  Table out = plan.Execute(&stats);
  ASSERT_EQ(out.num_rows(), 50);
  EXPECT_TRUE(engine::IsSortedBy(out, {t.bracket, t.tax}));
  // Agrees with the full sort's first 50 rows on the key columns.
  Table full = engine::SortBy(taxes_, {t.bracket, t.tax});
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(out.col(t.bracket).Int(i), full.col(t.bracket).Int(i));
  }
}

class DatePlannerTest : public ::testing::Test {
 protected:
  static constexpr int kStartYear = 1998;
  static constexpr int kYears = 4;
  void SetUp() override {
    dim_ = warehouse::GenerateDateDim(kStartYear, kYears);
    const int64_t first_sk = dim_.col(0).Int(0);
    fact_ = warehouse::GenerateStoreSales(/*num_rows=*/30000, first_sk,
                                          dim_.num_rows(), /*num_items=*/50,
                                          /*num_stores=*/10, /*seed=*/42);
    index_ = std::make_unique<engine::OrderedIndex>(&fact_,
                                                    engine::SortSpec{0});
    parts_ = std::make_unique<engine::PartitionedTable>(
        engine::PartitionedTable::PartitionByRange(fact_, 0, 16));
    dim_ods_ = std::make_shared<theory::Theory>(warehouse::DateDimOds());
  }
  Table dim_, fact_;
  std::unique_ptr<engine::OrderedIndex> index_;
  std::unique_ptr<engine::PartitionedTable> parts_;
  std::shared_ptr<theory::Theory> dim_ods_;
};

TEST_F(DatePlannerTest, DailySalesElidesJoinSortAndHash) {
  LogicalQuery q = warehouse::DailySalesQuery(
      &fact_, &dim_, index_.get(), parts_.get(), dim_ods_, kStartYear + 1);
  PhysicalPlan plan = PlanQuery(q);
  // The OD-aware plan: surrogate-range index scan (join elided), stream
  // aggregate (contiguity proven), no sort (order provided).
  EXPECT_EQ(plan.joins_elided(), 1);
  EXPECT_GE(plan.sorts_elided(), 2);  // stream agg + ORDER BY
  EXPECT_TRUE(ExplainMentions(plan, "StreamAggregate"));
  EXPECT_FALSE(ExplainMentions(plan, "Sort"));
  EXPECT_FALSE(ExplainMentions(plan, "Join"));

  ExecStats stats;
  Table out = plan.Execute(&stats);
  EXPECT_EQ(stats.sorts, 0);
  EXPECT_EQ(stats.joins, 0);
  EXPECT_EQ(stats.joins_elided, 1);
  EXPECT_TRUE(engine::IsSortedBy(out, {0}));
  EXPECT_EQ(out.num_rows(), 365);  // 1999: one output row per day

  // Same answer as the naive materializing join plan.
  const warehouse::DateDimColumns d;
  const warehouse::StoreSalesColumns f;
  DateRangeQuery ref;
  ref.name = q.name;
  ref.dim_predicates = q.filters[1];
  ref.fact_date_sk = f.ss_sold_date_sk;
  ref.dim_date_sk = d.d_date_sk;
  ref.fact_group_cols = q.group_cols;
  ref.fact_aggs = q.aggs;
  ExecStats ref_stats;
  Table baseline = BuildBaselinePlan(&fact_, &dim_, ref)->Execute(&ref_stats);
  EXPECT_TRUE(engine::SameRowMultiset(baseline, out));
  EXPECT_EQ(ref_stats.joins, 1);  // the baseline really paid the join
}

TEST_F(DatePlannerTest, WithoutOdsTheJoinStays) {
  LogicalQuery q = warehouse::DailySalesQuery(
      &fact_, &dim_, index_.get(), parts_.get(), /*dim_ods=*/nullptr,
      kStartYear + 1);
  PhysicalPlan plan = PlanQuery(q);
  EXPECT_EQ(plan.joins_elided(), 0);
  ExecStats stats;
  Table out = plan.Execute(&stats);
  EXPECT_EQ(stats.joins, 1);
  EXPECT_TRUE(engine::IsSortedBy(out, {0}));

  // Same rows as the OD-aware plan.
  LogicalQuery q2 = warehouse::DailySalesQuery(
      &fact_, &dim_, index_.get(), parts_.get(), dim_ods_, kStartYear + 1);
  ExecStats stats2;
  Table od_out = PlanQuery(q2).Execute(&stats2);
  EXPECT_TRUE(engine::SameRowMultiset(od_out, out));
}

TEST_F(DatePlannerTest, AllThirteenQueriesAgreeWithBaseline) {
  const auto queries = warehouse::TpcdsDateQueries(kStartYear, kYears);
  ASSERT_EQ(queries.size(), 13u);
  for (const auto& dq : queries) {
    LogicalQuery q = warehouse::ToLogicalQuery(
        dq, &fact_, &dim_, index_.get(), parts_.get(), dim_ods_);
    PhysicalPlan plan = PlanQuery(q);
    ExecStats stats;
    Table out = plan.Execute(&stats);
    ExecStats ref_stats;
    Table baseline =
        BuildBaselinePlan(&fact_, &dim_, dq)->Execute(&ref_stats);
    EXPECT_TRUE(engine::SameRowMultiset(baseline, out)) << dq.name;
    // The surrogate-key OD eliminates the join on every rewritable query.
    EXPECT_EQ(stats.joins, 0) << dq.name;
    EXPECT_EQ(stats.joins_elided, 1) << dq.name;
    EXPECT_LT(stats.rows_scanned, ref_stats.rows_scanned) << dq.name;
  }
}

TEST_F(DatePlannerTest, EveryPlansOrderingClaimSurvivesCheckOrder) {
  // Drain every warehouse plan through exec::CheckOrder: a plan whose
  // compiled root claims an ordering it does not deliver throws. This
  // turns the planner's OD proofs into executed assertions, not comments.
  auto run_checked = [](const PhysicalPlan& plan, ExecStats* stats) {
    exec::OpPtr op = exec::CheckOrder(plan.Compile(stats));
    return exec::Drain(op.get(), stats);
  };
  const auto queries = warehouse::TpcdsDateQueries(kStartYear, kYears);
  for (const auto& dq : queries) {
    LogicalQuery q = warehouse::ToLogicalQuery(
        dq, &fact_, &dim_, index_.get(), parts_.get(), dim_ods_);
    PhysicalPlan plan = PlanQuery(q);
    ExecStats stats;
    Table via_check = run_checked(plan, &stats);
    ExecStats ref_stats;
    Table direct = PlanQuery(q).Execute(&ref_stats);
    EXPECT_TRUE(engine::SameRowMultiset(direct, via_check)) << dq.name;
  }
  LogicalQuery daily = warehouse::DailySalesQuery(
      &fact_, &dim_, index_.get(), parts_.get(), dim_ods_, kStartYear + 1);
  PhysicalPlan plan = PlanQuery(daily);
  ASSERT_FALSE(plan.root().out_ordering.empty());
  ExecStats stats;
  Table out = run_checked(plan, &stats);
  EXPECT_TRUE(engine::IsSortedBy(out, plan.root().out_ordering));
}

TEST_F(DatePlannerTest, KeptJoinPrefersMergeWhenOrderIsProvided) {
  // No dim predicates ⇒ the join cannot be elided; with the fact index
  // stream providing the key order, merge join beats hash join and the
  // fact-side sort is proven unnecessary.
  const warehouse::StoreSalesColumns f;
  const warehouse::DateDimColumns d;
  LogicalQuery q;
  q.name = "all_days_daily";
  q.tables.push_back(TableRef{"store_sales", &fact_, index_.get(), nullptr,
                              nullptr, nullptr, -1});
  q.tables.push_back(TableRef{"date_dim", &dim_, nullptr, nullptr, dim_ods_,
                              nullptr, d.d_date});
  q.joins.push_back(JoinClause{1, f.ss_sold_date_sk, d.d_date_sk});
  q.group_cols = {f.ss_sold_date_sk};
  q.aggs = {{AggSpec::Kind::kSum, f.ss_net_paid, "sum_net"}};
  q.order_by = {f.ss_sold_date_sk};
  PhysicalPlan plan = PlanQuery(q);
  EXPECT_TRUE(ExplainMentions(plan, "MergeJoin"));
  ExecStats stats;
  Table out = plan.Execute(&stats);
  EXPECT_EQ(stats.joins, 1);
  EXPECT_EQ(stats.sorts, 0);  // fact side proven; dim side already sorted
  EXPECT_TRUE(engine::IsSortedBy(out, {0}));
  EXPECT_EQ(out.num_rows(), dim_.num_rows());
}

TEST_F(DatePlannerTest, PartitionPruningWithoutIndex) {
  LogicalQuery q = warehouse::DailySalesQuery(
      &fact_, &dim_, /*fact_sk_index=*/nullptr, parts_.get(), dim_ods_,
      kStartYear + 1);
  PhysicalPlan plan = PlanQuery(q);
  EXPECT_TRUE(ExplainMentions(plan, "PartitionedScan"));
  ExecStats stats;
  Table out = plan.Execute(&stats);
  EXPECT_EQ(stats.joins, 0);
  EXPECT_LT(stats.partitions_scanned, 16);
  EXPECT_TRUE(engine::IsSortedBy(out, {0}));
}

TEST_F(DatePlannerTest, MaterializingBridgeAgrees) {
  LogicalQuery q = warehouse::DailySalesQuery(
      &fact_, &dim_, index_.get(), parts_.get(), dim_ods_, kStartYear);
  PhysicalPlan plan = PlanQuery(q);
  PlanPtr bridge = plan.ToMaterializingPlan();
  ASSERT_NE(bridge, nullptr);
  ExecStats s1, s2;
  Table streaming = plan.Execute(&s1);
  Table materializing = bridge->Execute(&s2);
  EXPECT_TRUE(engine::SameRowMultiset(streaming, materializing));
}

TEST(PlannerValidationTest, MalformedQueriesThrow) {
  Schema s;
  s.Add("a", DataType::kInt64);
  Table t(s);
  t.AppendRow({Value(1)});

  LogicalQuery empty;
  EXPECT_THROW(PlanQuery(empty), std::invalid_argument);

  LogicalQuery null_table;
  null_table.tables.push_back(TableRef{"t", nullptr});
  EXPECT_THROW(PlanQuery(null_table), std::invalid_argument);

  LogicalQuery bad_join;
  bad_join.tables.push_back(TableRef{"t", &t});
  bad_join.joins.push_back(JoinClause{2, 0, 0});
  EXPECT_THROW(PlanQuery(bad_join), std::invalid_argument);

  LogicalQuery bad_order;
  bad_order.tables.push_back(TableRef{"t", &t});
  bad_order.group_cols = {0};
  bad_order.aggs = {{AggSpec::Kind::kCount, 0, "c"}};
  bad_order.order_by = {1};  // not a group column
  EXPECT_THROW(PlanQuery(bad_order), std::invalid_argument);
}

TEST(PlannerThreeTableTest, StarJoinOverItemAndStore) {
  warehouse::StoreSalesColumns f;
  Table dim = warehouse::GenerateDateDim(2000, 2);
  Table fact = warehouse::GenerateStoreSales(
      5000, dim.col(0).Int(0), dim.num_rows(), /*num_items=*/20,
      /*num_stores=*/5, /*seed=*/11);
  Table items = warehouse::GenerateItems(20, 3);
  Table stores = warehouse::GenerateStores(5, 4);

  LogicalQuery q;
  q.name = "fact_items_stores";
  q.tables.push_back(TableRef{"store_sales", &fact});
  q.tables.push_back(TableRef{"item", &items});
  q.tables.push_back(TableRef{"store", &stores});
  q.joins.push_back(JoinClause{1, f.ss_item_sk, 0});
  q.joins.push_back(JoinClause{2, f.ss_store_sk, 0});
  q.group_cols = {f.ss_store_sk};
  q.aggs = {{AggSpec::Kind::kSum, f.ss_net_paid, "sum_net"},
            {AggSpec::Kind::kCount, 0, "cnt"}};
  PhysicalPlan plan = PlanQuery(q);
  ExecStats stats;
  Table out = plan.Execute(&stats);
  EXPECT_EQ(stats.joins, 2);

  // Reference: materializing hash joins + hash aggregation.
  Table j1 = engine::HashJoin(fact, f.ss_item_sk, items, 0);
  Table j2 = engine::HashJoin(j1, f.ss_store_sk, stores, 0);
  Table ref = engine::HashGroupBy(
      j2, {f.ss_store_sk},
      {{AggSpec::Kind::kSum, f.ss_net_paid, "sum_net"},
       {AggSpec::Kind::kCount, 0, "cnt"}});
  EXPECT_TRUE(engine::SameRowMultiset(ref, out));
}

}  // namespace
}  // namespace opt
}  // namespace od
