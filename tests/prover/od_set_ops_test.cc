#include "prover/od_set_ops.h"

#include <gtest/gtest.h>

#include "core/parser.h"

namespace od {
namespace prover {
namespace {

DependencySet Parse(NameTable* names, const std::string& text) {
  Parser parser(names);
  auto set = parser.ParseSet(text);
  EXPECT_TRUE(set.has_value()) << parser.error();
  return *set;
}

TEST(OdSetOpsTest, EquivalentSetsDefinition9) {
  NameTable names;
  // Theorem 15: {X ↦ Y} is equivalent to {X ↦ XY} ∪ {X ~ Y}.
  DependencySet m1 = Parse(&names, "[a] -> [b]");
  DependencySet m2 = Parse(&names, "[a] -> [a, b]; [a] ~ [b]");
  EXPECT_TRUE(EquivalentSets(m1, m2));
  // Dropping the compatibility half breaks equivalence.
  DependencySet m3 = Parse(&names, "[a] -> [a, b]");
  EXPECT_FALSE(EquivalentSets(m1, m3));
  EXPECT_TRUE(ImpliesAll(m1, m3));
  EXPECT_FALSE(ImpliesAll(m3, m1));
}

TEST(OdSetOpsTest, RemoveRedundantKeepsEquivalence) {
  NameTable names;
  DependencySet m = Parse(
      &names, "[a] -> [b]; [b] -> [c]; [a] -> [c]; [a] -> [b]");
  DependencySet reduced = RemoveRedundant(m);
  EXPECT_LT(reduced.Size(), m.Size());
  EXPECT_TRUE(EquivalentSets(m, reduced));
  // a ↦ c (transitivity) and the duplicate must be gone.
  EXPECT_EQ(reduced.Size(), 2);
}

TEST(OdSetOpsTest, RemoveRedundantDropsTrivia) {
  NameTable names;
  DependencySet m = Parse(&names, "[a, b] -> [a]; [a] -> [c]");
  DependencySet reduced = RemoveRedundant(m);
  EXPECT_EQ(reduced.Size(), 1);
  EXPECT_TRUE(reduced.Contains(OrderDependency(
      AttributeList({names.Lookup("a")}),
      AttributeList({names.Lookup("c")}))));
}

TEST(OdSetOpsTest, NormalizeRemovesDuplicates) {
  DependencySet m;
  m.Add(AttributeList({0, 1, 0}), AttributeList({2, 2}));
  m.Add(AttributeList({0, 1}), AttributeList({2}));
  DependencySet normalized = Normalize(m);
  EXPECT_EQ(normalized.Size(), 1);
  EXPECT_EQ(normalized[0],
            OrderDependency(AttributeList({0, 1}), AttributeList({2})));
  EXPECT_TRUE(EquivalentSets(m, normalized));
}

TEST(OdSetOpsTest, TrivialityDetection) {
  // The paper's trivial OD examples: XY ↦ X (reflexivity shapes) and
  // X ↦ [] hold in every instance.
  EXPECT_TRUE(IsTrivial(OrderDependency(AttributeList({0, 1}),
                                        AttributeList({0}))));
  EXPECT_TRUE(IsTrivial(OrderDependency(AttributeList({0}),
                                        AttributeList())));
  EXPECT_TRUE(IsTrivial(OrderDependency(AttributeList({0, 1, 2}),
                                        AttributeList({0, 1}))));
  EXPECT_FALSE(IsTrivial(OrderDependency(AttributeList({0}),
                                         AttributeList({1}))));
  EXPECT_FALSE(IsTrivial(OrderDependency(AttributeList({0, 1}),
                                         AttributeList({1}))));
}

}  // namespace
}  // namespace prover
}  // namespace od
