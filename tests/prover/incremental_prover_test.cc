// Incremental re-proving: memo retention across Theory mutations, the
// split stats API, and the churn-sweep search-reduction gate (the prover
// must execute ≥5× fewer model searches than rebuild-from-scratch on a
// 90%-retained add/drop workload — the headline economics of the
// versioned-theory redesign). Counts are deterministic serially, so these
// are exact assertions, not timing-based flakes.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "core/parser.h"
#include "prover/prover.h"
#include "theory/theory.h"

namespace od {
namespace prover {
namespace {

TEST(IncrementalProverTest, StatsSplitAndReset) {
  Prover pv(DependencySet{{OrderDependency(AttributeList({0}),
                                           AttributeList({1}))}});
  const OrderDependency q(AttributeList({0}), AttributeList({1}));
  EXPECT_TRUE(pv.Implies(q));
  EXPECT_EQ(pv.searches_executed(), 1);
  EXPECT_EQ(pv.cache_hits(), 0);
  EXPECT_TRUE(pv.Implies(q));
  EXPECT_EQ(pv.searches_executed(), 1);
  EXPECT_EQ(pv.cache_hits(), 1);
  // search_count() stays as the executed-searches alias.
  EXPECT_EQ(pv.search_count(), pv.searches_executed());
  EXPECT_EQ(pv.memo_size(), 1);
  pv.ResetStats();
  EXPECT_EQ(pv.searches_executed(), 0);
  EXPECT_EQ(pv.cache_hits(), 0);
  EXPECT_EQ(pv.entries_invalidated(), 0);
  EXPECT_EQ(pv.entries_retained(), 0);
  // Resetting stats does not drop the memo.
  EXPECT_EQ(pv.memo_size(), 1);
  EXPECT_TRUE(pv.Implies(q));
  EXPECT_EQ(pv.searches_executed(), 0);
  EXPECT_EQ(pv.cache_hits(), 1);
}

TEST(IncrementalProverTest, PositiveSurvivesIrrelevantRemove) {
  auto th = std::make_shared<theory::Theory>();
  const auto ab = th->Add(AttributeList({0}), AttributeList({1}));
  const auto cd = th->Add(AttributeList({2}), AttributeList({3}));
  Prover pv(th);
  const OrderDependency q(AttributeList({0}), AttributeList({1}));
  EXPECT_TRUE(pv.Implies(q));
  EXPECT_EQ(pv.searches_executed(), 1);

  // [c] ↦ [d] never participated in proving [a] ↦ [b] (the support set
  // records only constraints that rejected candidate models), so dropping
  // it keeps the positive entry: the re-ask is a pure cache hit.
  const uint64_t derived_at = *pv.entry_epoch(q);
  EXPECT_EQ(derived_at, pv.epoch());
  th->Remove(cd);
  EXPECT_TRUE(pv.Implies(q));
  EXPECT_EQ(pv.searches_executed(), 1);
  EXPECT_GE(pv.entries_retained(), 1);
  // Retention keeps the original derivation tag: the entry now provably
  // predates the current catalog version.
  EXPECT_EQ(*pv.entry_epoch(q), derived_at);
  EXPECT_LT(*pv.entry_epoch(q), pv.epoch());

  // Dropping the supporting constraint evicts the entry, and the fresh
  // search flips the answer and re-tags it at the current epoch.
  th->Remove(ab);
  EXPECT_GE(pv.entries_invalidated(), 1);
  EXPECT_FALSE(pv.entry_epoch(q).has_value());
  EXPECT_FALSE(pv.Implies(q));
  EXPECT_EQ(pv.searches_executed(), 2);
  EXPECT_EQ(*pv.entry_epoch(q), pv.epoch());
}

TEST(IncrementalProverTest, PositivesAlwaysSurviveAdds) {
  NameTable names;
  Parser parser(&names);
  auto th = std::make_shared<theory::Theory>(
      *parser.ParseSet("[a] -> [b]; [b] -> [c]"));
  Prover pv(th);
  const OrderDependency q(AttributeList({names.Lookup("a")}),
                          AttributeList({names.Lookup("c")}));
  EXPECT_TRUE(pv.Implies(q));
  const int64_t searches = pv.searches_executed();
  // Implication is monotone in ℳ: any add preserves every positive.
  th->Add(AttributeList({names.Lookup("c")}),
          AttributeList({names.Lookup("a")}));
  EXPECT_TRUE(pv.Implies(q));
  EXPECT_EQ(pv.searches_executed(), searches);
}

TEST(IncrementalProverTest, NegativeSurvivesCompatibleAdd) {
  auto th = std::make_shared<theory::Theory>();
  th->Add(AttributeList({0}), AttributeList({1}));
  Prover pv(th);
  const OrderDependency q(AttributeList({1}), AttributeList({0}));
  EXPECT_FALSE(pv.Implies(q));
  EXPECT_EQ(pv.searches_executed(), 1);

  // An unrelated constraint over fresh attributes: the stored countermodel
  // zero-extends to satisfy it, so the negative entry survives the add.
  th->Add(AttributeList({4}), AttributeList({5}));
  EXPECT_FALSE(pv.Implies(q));
  EXPECT_EQ(pv.searches_executed(), 1);
  EXPECT_GE(pv.entries_retained(), 1);

  // A constraint the countermodel violates evicts the entry — and here the
  // answer genuinely flips, which an unsound retention would have missed.
  th->Add(AttributeList({1}), AttributeList({0}));
  EXPECT_TRUE(pv.Implies(q));
  EXPECT_EQ(pv.searches_executed(), 2);
}

TEST(IncrementalProverTest, NegativesAlwaysSurviveRemoves) {
  auto th = std::make_shared<theory::Theory>();
  const auto ab = th->Add(AttributeList({0}), AttributeList({1}));
  th->Add(AttributeList({2}), AttributeList({3}));
  Prover pv(th);
  const OrderDependency q(AttributeList({1}), AttributeList({2}));
  EXPECT_FALSE(pv.Implies(q));
  EXPECT_EQ(pv.searches_executed(), 1);
  th->Remove(ab);
  // ℳ only shrank: the countermodel still works, no re-search.
  EXPECT_FALSE(pv.Implies(q));
  EXPECT_EQ(pv.searches_executed(), 1);
}

TEST(IncrementalProverTest, EpochTracksTheory) {
  auto th = std::make_shared<theory::Theory>();
  Prover pv(th);
  EXPECT_EQ(pv.epoch(), 0u);
  const auto id = th->Add(AttributeList({0}), AttributeList({1}));
  EXPECT_EQ(pv.epoch(), 1u);
  th->Remove(id);
  EXPECT_EQ(pv.epoch(), 2u);
}

TEST(IncrementalProverTest, ProversShareOneTheory) {
  auto th = std::make_shared<theory::Theory>();
  th->Add(AttributeList({0}), AttributeList({1}));
  Prover first(th);
  Prover second(th);
  const OrderDependency q(AttributeList({0}), AttributeList({1}));
  EXPECT_TRUE(first.Implies(q));
  EXPECT_TRUE(second.Implies(q));
  th->RemoveOne(OrderDependency(AttributeList({0}), AttributeList({1})));
  // Both provers observed the removal through the change feed.
  EXPECT_FALSE(first.Implies(q));
  EXPECT_FALSE(second.Implies(q));
}

/// The chain theory and dense pair workload of bench_incremental_prover,
/// scaled for a unit test.
DependencySet ChainTheory(int n) {
  DependencySet m;
  for (int i = 0; i + 1 < n; ++i) {
    m.Add(AttributeList({i}), AttributeList({i + 1}));
  }
  return m;
}

std::vector<OrderDependency> PairQueries(int n) {
  std::vector<OrderDependency> queries;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      queries.emplace_back(AttributeList({i}), AttributeList({j}));
      queries.emplace_back(AttributeList({i}),
                           AttributeList({j, (j + 1) % n}));
    }
  }
  return queries;
}

TEST(IncrementalProverTest, ChurnSweepExecutesFiveTimesFewerSearches) {
  // The acceptance gate: a 90%-retained churn sweep (each epoch drops one
  // of the ~10 constraints and declares a replacement, then re-answers the
  // full workload) must cost the incremental prover ≥5× fewer executed
  // model searches than rebuilding a prover from scratch at every epoch.
  const int n = 11;
  const int kEpochs = 25;
  std::mt19937 rng(7);
  auto th = std::make_shared<theory::Theory>(ChainTheory(n));
  Prover incremental(th);
  const std::vector<OrderDependency> queries = PairQueries(n);

  incremental.ProveAll(queries);  // warm: the steady-state starting point
  incremental.ResetStats();

  int64_t rebuild_searches = 0;
  for (int e = 0; e < kEpochs; ++e) {
    // Drop a random live constraint, declare a replacement elsewhere.
    std::uniform_int_distribution<int> pick(0, th->Size() - 1);
    const auto victim_index = pick(rng);
    const OrderDependency victim = th->deps()[victim_index];
    th->Remove(th->ids()[victim_index]);
    th->Add(victim);  // re-declared: 90% of the catalog never moved

    incremental.ProveAll(queries);

    Prover rebuilt(th->deps());
    rebuilt.ProveAll(queries);
    rebuild_searches += rebuilt.searches_executed();
  }

  const int64_t incremental_searches = incremental.searches_executed();
  ASSERT_GT(incremental_searches, 0);  // churn does evict something
  EXPECT_GE(rebuild_searches, 5 * incremental_searches)
      << "incremental=" << incremental_searches
      << " rebuild=" << rebuild_searches;
  // And the two provers agree exactly at the final epoch.
  Prover fresh(th->deps());
  EXPECT_EQ(incremental.ProveAll(queries), fresh.ProveAll(queries));
}

}  // namespace
}  // namespace prover
}  // namespace od
