#include "prover/prover.h"

#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/witness.h"
#include "prover/closure.h"
#include "prover/two_row_model.h"

namespace od {
namespace prover {
namespace {

DependencySet Parse(NameTable* names, const std::string& text) {
  Parser parser(names);
  auto set = parser.ParseSet(text);
  EXPECT_TRUE(set.has_value()) << parser.error();
  return *set;
}

TEST(SignVectorTest, CompareAndSatisfy) {
  SignVector sv(3);
  sv.Set(0, 0);
  sv.Set(1, 1);
  sv.Set(2, -1);
  EXPECT_EQ(sv.CompareOnList(AttributeList({0})), 0);
  EXPECT_EQ(sv.CompareOnList(AttributeList({0, 1})), 1);
  EXPECT_EQ(sv.CompareOnList(AttributeList({0, 2, 1})), -1);
  // B ascends, C descends: B ↦ C is a swap violation.
  EXPECT_FALSE(sv.Satisfies(OrderDependency(AttributeList({1}),
                                            AttributeList({2}))));
  // A is constant across the rows: A ↦ B is split-violated.
  EXPECT_FALSE(sv.Satisfies(OrderDependency(AttributeList({0}),
                                            AttributeList({1}))));
  // B ↦ BA holds (equal A after equal B... B never equal).
  EXPECT_TRUE(sv.Satisfies(OrderDependency(AttributeList({1}),
                                           AttributeList({1, 0}))));
  // The materialized relation agrees with the abstract semantics.
  Relation r = sv.ToRelation();
  EXPECT_FALSE(Satisfies(r, OrderDependency(AttributeList({1}),
                                            AttributeList({2}))));
  EXPECT_TRUE(Satisfies(r, OrderDependency(AttributeList({1}),
                                           AttributeList({1, 0}))));
}

TEST(ProverTest, TrivialAndReflexive) {
  Prover pv((DependencySet()));
  // X ↦ [] and XY ↦ X hold vacuously / by reflexivity.
  EXPECT_TRUE(pv.Implies(AttributeList({0}), AttributeList()));
  EXPECT_TRUE(pv.Implies(AttributeList({0, 1}), AttributeList({0})));
  EXPECT_FALSE(pv.Implies(AttributeList({0}), AttributeList({1})));
  // [] ↦ X does not hold unless X is constant.
  EXPECT_FALSE(pv.Implies(AttributeList(), AttributeList({0})));
}

TEST(ProverTest, TransitivityAndSuffix) {
  NameTable names;
  Prover pv(Parse(&names, "[a] -> [b]; [b] -> [c]"));
  const AttributeId a = names.Lookup("a");
  const AttributeId b = names.Lookup("b");
  const AttributeId c = names.Lookup("c");
  EXPECT_TRUE(pv.Implies(AttributeList({a}), AttributeList({c})));
  // Suffix: X ↔ YX.
  EXPECT_TRUE(pv.OrderEquivalent(AttributeList({a}), AttributeList({b, a})));
  // The converse direction does not follow.
  EXPECT_FALSE(pv.Implies(AttributeList({c}), AttributeList({a})));
}

TEST(ProverTest, PaperExample5TaxSchedule) {
  // Example 5: [income] ↦ [bracket] and [income] ↦ [tax] entail
  // [income] ↦ [bracket, tax] (Union / Theorem 2).
  NameTable names;
  Prover pv(Parse(&names, "[income] -> [bracket]; [income] -> [tax]"));
  auto income = AttributeList({names.Lookup("income")});
  auto both = AttributeList(
      {names.Lookup("bracket"), names.Lookup("tax")});
  EXPECT_TRUE(pv.Implies(income, both));
}

TEST(ProverTest, Example1QuarterElimination) {
  // Example 1: given [month] ↦ [quarter], the order-by
  // [year, quarter, month] is equivalent to [year, month]
  // (Theorem 8, Left Eliminate).
  NameTable names;
  Prover pv(Parse(&names, "[month] -> [quarter]"));
  const AttributeId year = names.Intern("year");
  const AttributeId quarter = names.Lookup("quarter");
  const AttributeId month = names.Lookup("month");
  EXPECT_TRUE(pv.OrderEquivalent(AttributeList({year, quarter, month}),
                                 AttributeList({year, month})));
  // And year, month, quarter likewise reduces (Theorem 7, Eliminate).
  EXPECT_TRUE(pv.OrderEquivalent(AttributeList({year, month, quarter}),
                                 AttributeList({year, month})));
  // But quarter alone does not order month.
  EXPECT_FALSE(pv.Implies(AttributeList({quarter}), AttributeList({month})));
}

TEST(ProverTest, ListSensitivity) {
  // ODs are list-based: D ↦ B lets ABD reduce to AD, but ABCD cannot
  // reduce to ACD (Section 2.3 discussion).
  NameTable names;
  Prover pv(Parse(&names, "[d] -> [b]"));
  const AttributeId a = names.Intern("a");
  const AttributeId b = names.Lookup("b");
  const AttributeId c = names.Intern("c");
  const AttributeId d = names.Lookup("d");
  EXPECT_TRUE(pv.OrderEquivalent(AttributeList({a, b, d}),
                                 AttributeList({a, d})));
  EXPECT_FALSE(pv.OrderEquivalent(AttributeList({a, b, c, d}),
                                  AttributeList({a, c, d})));
}

TEST(ProverTest, ConstantsDetection) {
  NameTable names;
  Prover pv(Parse(&names, "[] -> [k]; [a] -> [b]"));
  EXPECT_TRUE(pv.IsConstant(names.Lookup("k")));
  EXPECT_FALSE(pv.IsConstant(names.Lookup("a")));
  EXPECT_EQ(pv.Constants(), AttributeSet{names.Lookup("k")});
}

TEST(ProverTest, FdProjectionAgreesOnSplits) {
  NameTable names;
  Prover pv(Parse(&names, "[a] -> [b]; [b, c] -> [d]"));
  const AttributeId a = names.Lookup("a");
  const AttributeId c = names.Lookup("c");
  const AttributeId d = names.Lookup("d");
  EXPECT_TRUE(pv.ImpliesFd(AttributeSet{a, c}, AttributeSet{d}));
  EXPECT_FALSE(pv.ImpliesFd(AttributeSet{a}, AttributeSet{d}));
  // FD-shaped OD implication must agree with the FD projection
  // (Theorem 16: ODs are complete over FDs).
  EXPECT_TRUE(pv.Implies(AttributeList({a, c}),
                         AttributeList({a, c, d})));
  EXPECT_FALSE(pv.Implies(AttributeList({a}), AttributeList({a, d})));
}

TEST(ProverTest, CounterexampleIsConsistentAndFalsifying) {
  NameTable names;
  DependencySet m = Parse(&names, "[a] -> [b]");
  Prover pv(m);
  const OrderDependency target(AttributeList({names.Lookup("b")}),
                               AttributeList({names.Lookup("a")}));
  auto cex = pv.Counterexample(target);
  ASSERT_TRUE(cex.has_value());
  EXPECT_TRUE(Satisfies(*cex, m));
  EXPECT_FALSE(Satisfies(*cex, target));
  // No counterexample for an implied OD.
  EXPECT_FALSE(pv.Counterexample(OrderDependency(
                                     AttributeList({names.Lookup("a")}),
                                     AttributeList({names.Lookup("b")})))
                   .has_value());
}

TEST(ProverTest, CounterexampleSharesTheMemo) {
  NameTable names;
  Prover pv(Parse(&names, "[a] -> [b]"));
  const AttributeId a = names.Lookup("a");
  const AttributeId b = names.Lookup("b");
  const OrderDependency implied(AttributeList({a}), AttributeList({b}));
  const OrderDependency refuted(AttributeList({b}), AttributeList({a}));

  // A cached "implied" answers Counterexample with no extra search.
  EXPECT_TRUE(pv.Implies(implied));
  EXPECT_EQ(pv.search_count(), 1);
  EXPECT_FALSE(pv.Counterexample(implied).has_value());
  EXPECT_EQ(pv.search_count(), 1);

  // A cached "not implied" stores the falsifying model itself: the
  // Counterexample call materializes it as a cache hit, no extra search.
  EXPECT_FALSE(pv.Implies(refuted));
  EXPECT_EQ(pv.search_count(), 2);
  auto cex = pv.Counterexample(refuted);
  ASSERT_TRUE(cex.has_value());
  EXPECT_EQ(pv.search_count(), 2);
  EXPECT_EQ(pv.cache_hits(), 2);  // the implied probe above, plus this one
  // The cached model is a genuine countermexample: satisfies ℳ, breaks dep.
  EXPECT_TRUE(Satisfies(*cex, pv.deps()));
  EXPECT_FALSE(Satisfies(*cex, refuted));
}

TEST(ProverTest, CounterexamplePopulatesTheMemo) {
  NameTable names;
  Prover pv(Parse(&names, "[a] -> [b]"));
  const OrderDependency refuted(AttributeList({names.Lookup("b")}),
                                AttributeList({names.Lookup("a")}));
  // Counterexample first: one search, and the boolean lands in the memo so
  // the subsequent Implies is a pure lookup.
  EXPECT_TRUE(pv.Counterexample(refuted).has_value());
  EXPECT_EQ(pv.search_count(), 1);
  EXPECT_FALSE(pv.Implies(refuted));
  EXPECT_EQ(pv.search_count(), 1);
}

TEST(ProverTest, ConstantsShortCircuitThroughFdProjection) {
  // Every attribute of ℳ is constant by the FD projection alone (∅ → k,
  // ∅ → j via transitivity through k): Constants() must not run a single
  // model search.
  NameTable names;
  Prover pv(Parse(&names, "[] -> [k]; [k] -> [j]"));
  EXPECT_EQ(pv.Constants(),
            (AttributeSet{names.Lookup("k"), names.Lookup("j")}));
  EXPECT_EQ(pv.search_count(), 0);
  // And the seeded memo answers the equivalent Implies without searching.
  EXPECT_TRUE(pv.Implies(AttributeList::EmptyList(),
                         AttributeList({names.Lookup("k")})));
  EXPECT_EQ(pv.search_count(), 0);
}

TEST(ProverTest, EmptyTheoryConstantsNeedNoSearch) {
  Prover pv((DependencySet()));
  EXPECT_FALSE(pv.IsConstant(0));
  EXPECT_TRUE(pv.Constants().IsEmpty());
  EXPECT_EQ(pv.search_count(), 0);
}

TEST(ProverTest, FdConstantStillFallsBackForNonConstants) {
  // k is FD-constant; a is not constant at all — the fallback search must
  // still run (and answer correctly) where the projection is silent.
  NameTable names;
  Prover pv(Parse(&names, "[] -> [k]; [a] -> [b]"));
  EXPECT_TRUE(pv.IsConstant(names.Lookup("k")));
  EXPECT_EQ(pv.search_count(), 0);
  EXPECT_FALSE(pv.IsConstant(names.Lookup("a")));
  EXPECT_EQ(pv.search_count(), 1);
}

TEST(ProverTest, OrderCompatibilityDefinition) {
  // A ~ B alone (no other constraints) is NOT valid: a swap falsifies it.
  Prover empty((DependencySet()));
  EXPECT_FALSE(empty.OrderCompatible(AttributeList({0}), AttributeList({1})));
  // But any X is compatible with itself and with [].
  EXPECT_TRUE(empty.OrderCompatible(AttributeList({0}), AttributeList({0})));
  EXPECT_TRUE(empty.OrderCompatible(AttributeList({0}), AttributeList()));
}

TEST(ProverTest, PinnedModelSearch) {
  NameTable names;
  DependencySet m = Parse(&names, "[a] ~ [b]");
  // With A ~ B prescribed, no model has A and B swapped.
  auto swap = FindModelWithSigns(
      m, m.Attributes(),
      {{names.Lookup("a"), Sign{1}}, {names.Lookup("b"), Sign{-1}}});
  EXPECT_FALSE(swap.has_value());
  // Both ascending is fine.
  auto asc = FindModelWithSigns(
      m, m.Attributes(),
      {{names.Lookup("a"), Sign{1}}, {names.Lookup("b"), Sign{1}}});
  EXPECT_TRUE(asc.has_value());
}

TEST(ClosureTest, EnumerateLists) {
  auto lists = EnumerateLists(AttributeSet{0, 1}, 2);
  // [], [0], [1], [0,1], [1,0]
  EXPECT_EQ(lists.size(), 5u);
  auto lists3 = EnumerateLists(AttributeSet{0, 1, 2}, 2);
  // [] + 3 singletons + 6 ordered pairs.
  EXPECT_EQ(lists3.size(), 10u);
}

TEST(ClosureTest, BoundedClosureContainsAxiomInstances) {
  NameTable names;
  Prover pv(Parse(&names, "[a] -> [b]"));
  auto closure = BoundedClosure(pv, AttributeSet{0, 1}, 2);
  auto contains = [&closure](const OrderDependency& dep) {
    for (const auto& d : closure) {
      if (d == dep) return true;
    }
    return false;
  };
  const AttributeId a = names.Lookup("a");
  const AttributeId b = names.Lookup("b");
  EXPECT_TRUE(contains(OrderDependency(AttributeList({a}),
                                       AttributeList({b}))));
  // Suffix consequence: X ↔ YX.
  EXPECT_TRUE(contains(OrderDependency(AttributeList({a}),
                                       AttributeList({b, a}))));
  EXPECT_TRUE(contains(OrderDependency(AttributeList({b, a}),
                                       AttributeList({a}))));
  // Non-consequence.
  EXPECT_FALSE(contains(OrderDependency(AttributeList({b}),
                                        AttributeList({a}))));
}

}  // namespace
}  // namespace prover
}  // namespace od
