// Cross-validation of the syntactic system against the exact semantic
// prover: an executable rendition of the paper's soundness-and-completeness
// theorem (Theorem 17) on small universes.
//
//  * Soundness: everything derived by axiom application is semantically
//    implied (checked in theorems_test via CheckProofSemantically).
//  * Completeness here: for bounded-length lists, every semantically implied
//    OD is *reachable* by saturating the axioms — i.e. the bounded semantic
//    closure equals the bounded syntactic fixpoint.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/parser.h"
#include "prover/closure.h"
#include "prover/prover.h"

namespace od {
namespace prover {
namespace {

using ListPair = std::pair<std::vector<AttributeId>, std::vector<AttributeId>>;

ListPair Key(const OrderDependency& dep) {
  return {dep.lhs.attrs(), dep.rhs.attrs()};
}

// Saturates the axioms OD1–OD6 over duplicate-free lists of length ≤
// max_len. Chain is approximated by single-attribute single-link instances,
// which suffices on these universes.
std::set<ListPair> SyntacticFixpoint(const DependencySet& m,
                                     const AttributeSet& universe,
                                     int max_len) {
  const std::vector<AttributeList> lists = EnumerateLists(universe, max_len);
  std::set<ListPair> derived;
  auto in_scope = [&](const AttributeList& l) {
    return l.Size() <= max_len && l.RemoveDuplicates() == l;
  };
  auto add = [&](const AttributeList& lhs, const AttributeList& rhs,
                 bool* changed) {
    if (!in_scope(lhs) || !in_scope(rhs)) return;
    if (derived.insert({lhs.attrs(), rhs.attrs()}).second) *changed = true;
  };

  bool changed = true;
  for (const auto& dep : m.ods()) {
    bool dummy = false;
    add(dep.lhs, dep.rhs, &dummy);
  }
  while (changed) {
    changed = false;
    // OD1 Reflexivity: XY ↦ X for every pair of lists in scope.
    for (const auto& xy : lists) {
      for (int cut = 0; cut <= xy.Size(); ++cut) {
        add(xy, xy.Prefix(cut), &changed);
      }
    }
    std::vector<ListPair> snapshot(derived.begin(), derived.end());
    for (const auto& [lhs_v, rhs_v] : snapshot) {
      const AttributeList lhs{lhs_v};
      const AttributeList rhs{rhs_v};
      // OD2 Prefix.
      for (const auto& z : lists) {
        add(z.Concat(lhs), z.Concat(rhs), &changed);
      }
      // OD5 Suffix: X ↔ YX.
      add(lhs, rhs.Concat(lhs).RemoveDuplicates(), &changed);
      add(rhs.Concat(lhs).RemoveDuplicates(), lhs, &changed);
      // OD4 Transitivity.
      for (const auto& [lhs2_v, rhs2_v] : snapshot) {
        if (rhs_v == lhs2_v) {
          add(lhs, AttributeList{rhs2_v}, &changed);
        }
      }
    }
    // OD3 Normalization: duplicate-free representatives are canonical here,
    // so the RemoveDuplicates() calls above play its role.
  }
  return derived;
}

class CompletenessTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CompletenessTest, BoundedSyntacticEqualsSemantic) {
  NameTable names;
  Parser parser(&names);
  auto m = parser.ParseSet(GetParam());
  ASSERT_TRUE(m.has_value()) << parser.error();
  const AttributeSet universe = m->Attributes();
  const int kMaxLen = 2;

  Prover pv(*m);
  std::set<ListPair> semantic;
  for (const auto& dep : BoundedClosure(pv, universe, kMaxLen)) {
    semantic.insert(Key(dep));
  }
  // Syntactic saturation with a slightly larger length bound so that
  // intermediate lists (e.g. YX in Suffix) are representable, then filter.
  std::set<ListPair> syntactic_all =
      SyntacticFixpoint(*m, universe, kMaxLen + 1);
  std::set<ListPair> syntactic;
  for (const auto& key : syntactic_all) {
    if (static_cast<int>(key.first.size()) <= kMaxLen &&
        static_cast<int>(key.second.size()) <= kMaxLen) {
      syntactic.insert(key);
    }
  }

  // Soundness: syntactic ⊆ semantic.
  for (const auto& key : syntactic) {
    EXPECT_TRUE(semantic.count(key))
        << "axioms derived a non-implied OD: "
        << ToString(AttributeList{key.first}) << " -> "
        << ToString(AttributeList{key.second});
  }
  // Completeness: semantic ⊆ syntactic.
  for (const auto& key : semantic) {
    EXPECT_TRUE(syntactic.count(key))
        << "axioms failed to derive the implied OD: "
        << ToString(AttributeList{key.first}) << " -> "
        << ToString(AttributeList{key.second});
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallTheories, CompletenessTest,
    ::testing::Values("[a] -> [b]",
                      "[a] -> [b]; [b] -> [a]",
                      "[a] -> [b]; [b] -> [c]",
                      "[a] <-> [b]",
                      "[a] -> [b, c]"));

}  // namespace
}  // namespace prover
}  // namespace od
