// Concurrency tests for the prover: one shared Prover hammered from many
// threads with overlapping queries must return exactly the answers a serial
// run produces, and ProveAll must be positionally bit-identical to a serial
// loop. Run under -DOD_SANITIZE=thread these exercise the sharded memo and
// the atomic search counter for data races.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/parser.h"
#include "prover/closure.h"
#include "prover/prover.h"

namespace od {
namespace prover {
namespace {

DependencySet Parse(NameTable* names, const std::string& text) {
  Parser parser(names);
  auto set = parser.ParseSet(text);
  EXPECT_TRUE(set.has_value()) << parser.error();
  return *set;
}

/// Every list-vs-list query over `universe` with lists of up to
/// `max_length` attributes — a dense, overlapping workload with plenty of
/// duplicate cache keys once threads race.
std::vector<OrderDependency> AllQueries(const AttributeSet& universe,
                                        int max_length) {
  std::vector<OrderDependency> queries;
  const auto lists = EnumerateLists(universe, max_length);
  for (const auto& lhs : lists) {
    for (const auto& rhs : lists) {
      queries.emplace_back(lhs, rhs);
    }
  }
  return queries;
}

class ProverConcurrencyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ProverConcurrencyTest, HammeredProverMatchesSerial) {
  NameTable names;
  DependencySet m = Parse(&names, GetParam());
  const std::vector<OrderDependency> queries = AllQueries(m.Attributes(), 2);
  ASSERT_FALSE(queries.empty());

  // Ground truth from a serial prover.
  Prover serial(m);
  std::vector<bool> expected;
  expected.reserve(queries.size());
  for (const auto& q : queries) expected.push_back(serial.Implies(q));

  // One shared prover, N threads, each walking the same queries in a
  // different shuffled order so cache hits, misses, and racing duplicates
  // all occur.
  Prover shared(m);
  constexpr int kThreads = 8;
  std::vector<std::vector<char>> got(kThreads,
                                     std::vector<char>(queries.size(), 0));
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<size_t> order(queries.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::mt19937 rng(1234 + t);
      std::shuffle(order.begin(), order.end(), rng);
      for (size_t i : order) {
        got[t][i] = shared.Implies(queries[i]) ? 1 : 0;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < queries.size(); ++i) {
      if ((got[t][i] != 0) != expected[i]) mismatches.fetch_add(1);
    }
  }
  EXPECT_EQ(mismatches.load(), 0);
  // Duplicate races may re-run a search, but never more than once per
  // thread per distinct query — and the serial count is a lower bound.
  EXPECT_GE(shared.search_count(), serial.search_count());
  EXPECT_LE(shared.search_count(), serial.search_count() * kThreads);
}

TEST_P(ProverConcurrencyTest, ProveAllMatchesSerialLoop) {
  NameTable names;
  DependencySet m = Parse(&names, GetParam());
  const std::vector<OrderDependency> queries = AllQueries(m.Attributes(), 2);

  Prover serial(m);
  std::vector<bool> expected;
  for (const auto& q : queries) expected.push_back(serial.Implies(q));

  common::ThreadPool pool(4);
  Prover batched(m);
  const std::vector<bool> got = batched.ProveAll(queries, &pool);
  EXPECT_EQ(got, expected);

  // The serial fallback (no pool) agrees too, on a warm cache.
  EXPECT_EQ(batched.ProveAll(queries, nullptr), expected);
}

INSTANTIATE_TEST_SUITE_P(
    SmallTheories, ProverConcurrencyTest,
    ::testing::Values("[a] -> [b]; [b] -> [c]",
                      "[a] ~ [b]; [b] -> [c]",
                      "[] -> [k]; [a] -> [b]",
                      "[a] -> [b, c]; [c] -> [a]"));

TEST(ProverConcurrencyTest, ConcurrentCounterexamplesAndConstants) {
  // Mixed query kinds in flight at once: Implies, Counterexample (which
  // writes the memo too), and IsConstant (which seeds it via the FD path).
  NameTable names;
  DependencySet m = Parse(&names, "[] -> [k]; [a] -> [b]; [b] -> [c]");
  Prover shared(m);
  const AttributeId a = names.Lookup("a");
  const AttributeId c = names.Lookup("c");
  const OrderDependency implied(AttributeList({a}), AttributeList({c}));
  const OrderDependency refuted(AttributeList({c}), AttributeList({a}));

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 10; ++round) {
        switch ((t + round) % 4) {
          case 0:
            if (!shared.Implies(implied)) errors.fetch_add(1);
            break;
          case 1:
            if (shared.Counterexample(implied).has_value()) errors.fetch_add(1);
            break;
          case 2:
            if (!shared.Counterexample(refuted).has_value()) errors.fetch_add(1);
            break;
          case 3:
            if (!shared.IsConstant(names.Lookup("k")) || shared.IsConstant(a)) {
              errors.fetch_add(1);
            }
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace prover
}  // namespace od
