// The prover's registry instrumentation must be a pure mirror of the
// instance counters: cached implication queries add zero model searches —
// to the instance accessors AND to the process-wide registry — and the
// memo-hit counter moves in lockstep with cache_hits(). Guards against the
// instrumentation ever touching the hot-path semantics.

#include "prover/prover.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "core/parser.h"

namespace od {
namespace prover {
namespace {

DependencySet Parse(NameTable* names, const std::string& text) {
  Parser parser(names);
  auto set = parser.ParseSet(text);
  EXPECT_TRUE(set.has_value()) << parser.error();
  return *set;
}

struct RegistryView {
  int64_t searches;
  int64_t hits;
};

RegistryView ReadRegistry() {
  common::MetricRegistry& reg = common::MetricRegistry::Global();
  return RegistryView{
      reg.GetCounter("od_prover_searches_total").Value(),
      reg.GetCounter("od_prover_memo_hits_total").Value(),
  };
}

TEST(ProverMetricsTest, CachedPathAddsZeroSearches) {
  NameTable names;
  Prover pv(Parse(&names, "[a] -> [b]; [b] -> [c]"));
  const AttributeId a = names.Lookup("a");
  const AttributeId c = names.Lookup("c");

  // Cold query: one (or more) real searches, instance and registry agree
  // on the delta.
  const RegistryView before_cold = ReadRegistry();
  const int64_t inst_searches_cold = pv.searches_executed();
  EXPECT_TRUE(pv.Implies(AttributeList({a}), AttributeList({c})));
  const int64_t cold_delta = pv.searches_executed() - inst_searches_cold;
  EXPECT_GE(cold_delta, 1);
  EXPECT_EQ(ReadRegistry().searches - before_cold.searches, cold_delta);

  // Warm queries: memo answers, zero searches anywhere, hit counters move
  // in lockstep.
  const RegistryView before_warm = ReadRegistry();
  const int64_t inst_searches_warm = pv.searches_executed();
  const int64_t inst_hits_warm = pv.cache_hits();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(pv.Implies(AttributeList({a}), AttributeList({c})));
  }
  EXPECT_EQ(pv.searches_executed(), inst_searches_warm);
  const RegistryView after_warm = ReadRegistry();
  EXPECT_EQ(after_warm.searches, before_warm.searches);
  const int64_t inst_hit_delta = pv.cache_hits() - inst_hits_warm;
  EXPECT_GE(inst_hit_delta, 5);
  EXPECT_EQ(after_warm.hits - before_warm.hits, inst_hit_delta);
}

TEST(ProverMetricsTest, SearchDepthHistogramRecordsUniverseSizes) {
  common::MetricRegistry& reg = common::MetricRegistry::Global();
  common::Histogram& depth = reg.GetHistogram("od_prover_search_depth");
  const int64_t before = depth.Count();
  NameTable names;
  Prover pv(Parse(&names, "[a] -> [b]"));
  // A miss that needs a model search records the universe it branched over.
  EXPECT_FALSE(pv.Implies(AttributeList({names.Lookup("b")}),
                          AttributeList({names.Lookup("a")})));
  EXPECT_GT(depth.Count(), before);
}

}  // namespace
}  // namespace prover
}  // namespace od
