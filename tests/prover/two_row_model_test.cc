#include "prover/two_row_model.h"

#include <random>

#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/witness.h"
#include "prover/closure.h"
#include "prover/prover.h"

namespace od {
namespace prover {
namespace {

AttributeList RandomList(std::mt19937* rng, int attrs, int max_len) {
  std::uniform_int_distribution<int> len(0, max_len);
  std::uniform_int_distribution<int> attr(0, attrs - 1);
  std::vector<AttributeId> out;
  AttributeSet used;
  for (int i = len(*rng); i > 0; --i) {
    const AttributeId a = attr(*rng);
    if (!used.Contains(a)) {
      used.Add(a);
      out.push_back(a);
    }
  }
  return AttributeList(std::move(out));
}

// The abstract sign-vector semantics must agree with the concrete two-row
// relation it denotes, for every OD — this is the correctness core of the
// whole prover.
class AbstractionAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(AbstractionAgreementTest, SignVectorMatchesMaterializedRelation) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> sign(-1, 1);
  const int kAttrs = 5;
  for (int trial = 0; trial < 50; ++trial) {
    SignVector sv(kAttrs);
    for (int a = 0; a < kAttrs; ++a) {
      sv.Set(a, static_cast<Sign>(sign(rng)));
    }
    Relation r = sv.ToRelation();
    for (int q = 0; q < 10; ++q) {
      const OrderDependency dep(RandomList(&rng, kAttrs, 3),
                                RandomList(&rng, kAttrs, 3));
      EXPECT_EQ(sv.Satisfies(dep), Satisfies(r, dep))
          << dep.ToString() << " on σ=" << sv.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbstractionAgreementTest,
                         ::testing::Range(1, 9));

TEST(TwoRowModelTest, FalsifyingModelContract) {
  NameTable names;
  Parser parser(&names);
  DependencySet m = *parser.ParseSet("[a] -> [b]; [c] ~ [a]");
  const OrderDependency target(AttributeList({names.Lookup("b")}),
                               AttributeList({names.Lookup("c")}));
  auto model = FindFalsifyingModel(m, target, m.Attributes());
  ASSERT_TRUE(model.has_value());
  // Contract: satisfies every OD of ℳ, falsifies the target.
  for (const auto& dep : m.ods()) {
    EXPECT_TRUE(model->Satisfies(dep)) << dep.ToString();
  }
  EXPECT_FALSE(model->Satisfies(target));
}

TEST(TwoRowModelTest, NonConstantModel) {
  NameTable names;
  Parser parser(&names);
  DependencySet m = *parser.ParseSet("[] -> [k]; [a] -> [b]");
  // k is pinned constant: no model moves it.
  EXPECT_FALSE(
      FindNonConstantModel(m, names.Lookup("k"), m.Attributes()).has_value());
  // a is free.
  auto model = FindNonConstantModel(m, names.Lookup("a"), m.Attributes());
  ASSERT_TRUE(model.has_value());
  EXPECT_NE(model->Get(names.Lookup("a")), 0);
}

// The Permutation theorem is deliberately restricted to FD-shaped
// conclusions: permuting the left side of a general OD is UNSOUND, and the
// model search exhibits the counterexample.
TEST(TwoRowModelTest, LhsPermutationUnsoundForGeneralOds) {
  DependencySet m;
  m.Add(AttributeList({0, 1}), AttributeList({2}));  // AB ↦ C
  const OrderDependency permuted(AttributeList({1, 0}),
                                 AttributeList({2}));  // BA ↦ C
  auto model = FindFalsifyingModel(m, permuted, m.Attributes());
  ASSERT_TRUE(model.has_value());
  Relation r = model->ToRelation();
  EXPECT_TRUE(Satisfies(r, m));
  EXPECT_FALSE(Satisfies(r, permuted));
}

// Monotonicity of implication: adding constraints never removes
// consequences.
TEST(TwoRowModelTest, ImplicationMonotoneInConstraints) {
  NameTable names;
  Parser parser(&names);
  DependencySet small = *parser.ParseSet("[a] -> [b]");
  DependencySet big = *parser.ParseSet("[a] -> [b]; [b] -> [c]");
  Prover pv_small(small);
  Prover pv_big(big);
  const auto lists = EnumerateLists(AttributeSet{0, 1, 2}, 2);
  for (const auto& x : lists) {
    for (const auto& y : lists) {
      const OrderDependency dep(x, y);
      if (pv_small.Implies(dep)) {
        EXPECT_TRUE(pv_big.Implies(dep)) << dep.ToString();
      }
    }
  }
}

// Suffix-axiom subtleties. Given A ↦ B, both X ↔ XY and X ↔ YX hold, and
// even AB ↦ B follows (s ≺_A t forces s ≼_B t). Without the premise, none
// of these non-trivial shapes hold — the model semantics keeps the
// asymmetry straight.
TEST(TwoRowModelTest, SuffixShapeEdgeCases) {
  DependencySet m;
  m.Add(AttributeList({0}), AttributeList({1}));  // A ↦ B
  Prover pv(m);
  EXPECT_TRUE(pv.OrderEquivalent(AttributeList({0}), AttributeList({0, 1})));
  EXPECT_TRUE(pv.OrderEquivalent(AttributeList({0}), AttributeList({1, 0})));
  EXPECT_TRUE(pv.Implies(AttributeList({0, 1}), AttributeList({1})));
  // Without the premise, none of these hold.
  Prover empty((DependencySet()));
  EXPECT_FALSE(
      empty.OrderEquivalent(AttributeList({0}), AttributeList({0, 1})));
  EXPECT_FALSE(empty.Implies(AttributeList({0, 1}), AttributeList({1})));
}

TEST(TwoRowModelTest, EmptyTheoryEdgeCases) {
  DependencySet empty;
  // [] ↦ [] is trivially implied; [] ↦ [a] is not.
  Prover pv(empty);
  EXPECT_TRUE(pv.Implies(AttributeList(), AttributeList()));
  EXPECT_FALSE(pv.Implies(AttributeList(), AttributeList({0})));
  // Any X ↦ X and X ↦ [] are trivial.
  EXPECT_TRUE(pv.Implies(AttributeList({3, 1}), AttributeList({3, 1})));
  EXPECT_TRUE(pv.Implies(AttributeList({3, 1}), AttributeList({3})));
}

}  // namespace
}  // namespace prover
}  // namespace od
