// Header-hygiene smoke test: pulls in one header from each src/ subsystem
// and links against od_core. If a header stops being self-contained (or a
// subsystem stops linking), this is the first binary to fail.

#include <gtest/gtest.h>

#include "armstrong/generator.h"
#include "axioms/system.h"
#include "core/dependency.h"
#include "engine/table.h"
#include "fd/fd_set.h"
#include "optimizer/plan.h"
#include "prover/prover.h"
#include "warehouse/date_dim.h"

namespace od {
namespace {

TEST(BuildSanityTest, HeadersAreSelfContainedAndLibraryLinks) {
  // Touch a symbol with out-of-line definitions so the linker must
  // actually resolve against od_core rather than headers alone.
  DependencySet m;
  EXPECT_TRUE(m.IsEmpty());
  prover::Prover prover(m);
  EXPECT_TRUE(prover.deps().IsEmpty());
}

}  // namespace
}  // namespace od
