#include "core/lex_order.h"

#include <random>

#include <gtest/gtest.h>

#include "core/attribute.h"
#include "core/relation.h"

namespace od {
namespace {

// The Figure 1 relation from the paper:
//   A B C D E F
//   3 2 0 4 7 9
//   3 2 1 3 8 9
Relation PaperFigure1() {
  return Relation::FromInts({{3, 2, 0, 4, 7, 9}, {3, 2, 1, 3, 8, 9}});
}

constexpr AttributeId A = 0, B = 1, C = 2, D = 3, E = 4, F = 5;

TEST(LexOrderTest, EmptyListComparesEqual) {
  Relation r = PaperFigure1();
  EXPECT_EQ(CompareOnList(r, 0, 1, AttributeList()), 0);
  EXPECT_TRUE(LexEq(r, 0, 1, AttributeList()));
  EXPECT_TRUE(LexLeq(r, 0, 1, AttributeList()));
  EXPECT_FALSE(LexLess(r, 0, 1, AttributeList()));
}

TEST(LexOrderTest, SingleAttribute) {
  Relation r = PaperFigure1();
  EXPECT_TRUE(LexEq(r, 0, 1, AttributeList({A})));
  EXPECT_TRUE(LexLess(r, 0, 1, AttributeList({C})));  // 0 < 1
  EXPECT_TRUE(LexLess(r, 1, 0, AttributeList({D})));  // 3 < 4
}

TEST(LexOrderTest, FirstDifferenceDecides) {
  Relation r = PaperFigure1();
  // [A, B] ties, so comparison falls through to C.
  EXPECT_TRUE(LexLess(r, 0, 1, AttributeList({A, B, C})));
  // D reverses: row1 ≺ row0 on [A, B, D].
  EXPECT_TRUE(LexLess(r, 1, 0, AttributeList({A, B, D})));
  // F ties and E decides.
  EXPECT_TRUE(LexLess(r, 0, 1, AttributeList({F, E})));
}

TEST(LexOrderTest, StrictAndEqualityAreMutuallyExclusive) {
  Relation r = PaperFigure1();
  const AttributeList x({C, D});
  EXPECT_TRUE(LexLess(r, 0, 1, x));
  EXPECT_FALSE(LexEq(r, 0, 1, x));
  EXPECT_FALSE(LexLeq(r, 1, 0, x));
}

TEST(LexOrderTest, ReflexiveOnSameRow) {
  Relation r = PaperFigure1();
  for (int row = 0; row < r.num_rows(); ++row) {
    EXPECT_TRUE(LexEq(r, row, row, AttributeList({A, B, C, D, E, F})));
  }
}

// Property sweep: ≼ must be a total preorder on random instances, and the
// recursive Definition 1 must agree with the head/tail expansion.
class LexOrderPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LexOrderPropertyTest, TotalPreorderAndRecursion) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int64_t> val(0, 3);
  const int kAttrs = 4;
  const int kRows = 8;
  Relation r(kAttrs);
  for (int i = 0; i < kRows; ++i) {
    r.AddIntRow({val(rng), val(rng), val(rng), val(rng)});
  }
  std::vector<AttributeList> lists = {
      AttributeList({0}), AttributeList({2, 1}), AttributeList({3, 0, 1}),
      AttributeList({1, 1, 2})};
  for (const auto& x : lists) {
    for (int s = 0; s < kRows; ++s) {
      for (int t = 0; t < kRows; ++t) {
        // Totality: s ≼ t or t ≼ s.
        EXPECT_TRUE(LexLeq(r, s, t, x) || LexLeq(r, t, s, x));
        // Anti-symmetry of the induced comparison values.
        EXPECT_EQ(CompareOnList(r, s, t, x), -CompareOnList(r, t, s, x));
        // Definition 1 recursion: s ≼_[A|T] t iff s.A < t.A or
        // (s.A = t.A and (T = [] or s ≼_T t)).
        if (!x.IsEmpty()) {
          const AttributeId head = x.Head();
          const AttributeList tail = x.Tail();
          const bool direct = LexLeq(r, s, t, x);
          const int head_cmp = r.At(s, head).Compare(r.At(t, head));
          const bool recursive =
              head_cmp < 0 ||
              (head_cmp == 0 && (tail.IsEmpty() || LexLeq(r, s, t, tail)));
          EXPECT_EQ(direct, recursive);
        }
        // Transitivity.
        for (int u = 0; u < kRows; ++u) {
          if (LexLeq(r, s, t, x) && LexLeq(r, t, u, x)) {
            EXPECT_TRUE(LexLeq(r, s, u, x));
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LexOrderPropertyTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace od
