#include "core/attribute.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/dependency.h"
#include "core/value.h"

namespace od {
namespace {

TEST(AttributeSetTest, BasicOps) {
  AttributeSet s{1, 3, 5};
  EXPECT_EQ(s.Size(), 3);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(2));
  s.Add(2);
  EXPECT_TRUE(s.Contains(2));
  s.Remove(1);
  EXPECT_FALSE(s.Contains(1));
  EXPECT_EQ(s.ToVector(), (std::vector<AttributeId>{2, 3, 5}));
}

TEST(AttributeSetTest, SetAlgebra) {
  AttributeSet a{0, 1, 2};
  AttributeSet b{2, 3};
  EXPECT_EQ(a.Union(b), (AttributeSet{0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), (AttributeSet{2}));
  EXPECT_EQ(a.Minus(b), (AttributeSet{0, 1}));
  EXPECT_TRUE((AttributeSet{0, 1}).SubsetOf(a));
  EXPECT_TRUE((AttributeSet{0, 1}).ProperSubsetOf(a));
  EXPECT_FALSE(a.ProperSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(AttributeSet{4}));
  EXPECT_EQ(AttributeSet::FirstN(3), (AttributeSet{0, 1, 2}));
}

TEST(AttributeListTest, ConcatAndSlicing) {
  AttributeList x{0, 1};
  AttributeList y{2};
  AttributeList xy = x.Concat(y);
  EXPECT_EQ(xy, (AttributeList{0, 1, 2}));
  EXPECT_EQ(xy.Head(), 0);
  EXPECT_EQ(xy.Tail(), (AttributeList{1, 2}));
  EXPECT_EQ(xy.Prefix(2), x);
  EXPECT_EQ(xy.Suffix(2), y);
  EXPECT_TRUE(x.IsPrefixOf(xy));
  EXPECT_FALSE(y.IsPrefixOf(xy));
  EXPECT_EQ(xy.Append(5), (AttributeList{0, 1, 2, 5}));
  EXPECT_EQ(xy.Prepend(5), (AttributeList{5, 0, 1, 2}));
}

TEST(AttributeListTest, SetConversionAndDuplicates) {
  AttributeList l{3, 1, 3, 2, 1};
  EXPECT_EQ(l.ToSet(), (AttributeSet{1, 2, 3}));
  EXPECT_EQ(l.RemoveDuplicates(), (AttributeList{3, 1, 2}));
  EXPECT_EQ(l.RemoveAttributes(AttributeSet{3}), (AttributeList{1, 2, 1}));
  EXPECT_TRUE(l.Contains(2));
  EXPECT_FALSE(l.Contains(0));
  EXPECT_TRUE((AttributeList{1, 2, 3}).IsPermutationOf(AttributeList{3, 1, 2}));
  EXPECT_FALSE((AttributeList{1, 1, 2}).IsPermutationOf(AttributeList{1, 2, 2}));
}

TEST(NameTableTest, InternAndFormat) {
  NameTable names;
  const AttributeId year = names.Intern("year");
  const AttributeId month = names.Intern("month");
  EXPECT_EQ(names.Intern("year"), year);  // stable
  EXPECT_EQ(names.Lookup("month"), month);
  EXPECT_EQ(names.Lookup("nope"), -1);
  EXPECT_EQ(names.Format(AttributeList({year, month})), "[year, month]");
}

TEST(ValueTest, OrderingWithinAndAcrossTypes) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_EQ(Value(int64_t{2}), Value(2.0));
  EXPECT_LT(Value(1.5), Value(int64_t{2}));
  EXPECT_LT(Value("apple"), Value("banana"));
  // Numbers order before strings — and this models the paper's Example 1
  // trap: as strings, quarter names sort "first", "fourth", "second",
  // "third" rather than in calendar order.
  EXPECT_LT(Value("first"), Value("fourth"));
  EXPECT_LT(Value("fourth"), Value("second"));
  EXPECT_LT(Value("second"), Value("third"));
}

TEST(ValueTest, NanOrdersTotally) {
  // IEEE `<` makes NaN incomparable with everything; CompareDoubles makes
  // the order total — all NaNs equal, after every ordered value — so sorts
  // over NaN-bearing columns stay strict-weak and swap detection can't
  // miss violations through phantom ties.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(CompareDoubles(nan, nan), 0);
  EXPECT_EQ(CompareDoubles(nan, 1.0), 1);
  EXPECT_EQ(CompareDoubles(1.0, nan), -1);
  EXPECT_EQ(CompareDoubles(nan, std::numeric_limits<double>::infinity()), 1);
  EXPECT_EQ(CompareDoubles(-0.0, 0.0), 0);
  EXPECT_EQ(Value(nan), Value(nan));
  EXPECT_LT(Value(1e300), Value(nan));
  EXPECT_GT(Value(nan), Value(int64_t{5}));
}

TEST(DependencySetTest, BuildersAndProjection) {
  DependencySet m;
  m.Add(AttributeList({0}), AttributeList({1}));
  m.AddEquivalence(AttributeList({1}), AttributeList({2}));
  m.AddCompatibility(AttributeList({0}), AttributeList({3}));
  m.AddConstant(4);
  EXPECT_EQ(m.Size(), 6);
  EXPECT_EQ(m.Attributes(), (AttributeSet{0, 1, 2, 3, 4}));
  EXPECT_TRUE(m.Contains(OrderDependency(AttributeList({1}),
                                         AttributeList({2}))));

  DependencySet projected = m.ProjectOut(AttributeSet{1});
  for (const auto& d : projected.ods()) {
    EXPECT_FALSE(d.lhs.Contains(1));
    EXPECT_FALSE(d.rhs.Contains(1));
  }
}

TEST(OrderDependencyTest, Shape) {
  OrderDependency fd_shaped(AttributeList({0, 1}), AttributeList({0, 1, 2}));
  EXPECT_TRUE(fd_shaped.IsFdShaped());
  OrderDependency other(AttributeList({0, 1}), AttributeList({2}));
  EXPECT_FALSE(other.IsFdShaped());
  EXPECT_EQ(other.Converse(),
            OrderDependency(AttributeList({2}), AttributeList({0, 1})));
  EXPECT_TRUE(
      OrderDependency(AttributeList({0}), AttributeList()).HasEmptyRhs());
}

}  // namespace
}  // namespace od
