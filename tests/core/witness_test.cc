#include "core/witness.h"

#include <random>

#include <gtest/gtest.h>

#include "core/lex_order.h"
#include "core/parser.h"

namespace od {
namespace {

constexpr AttributeId A = 0, B = 1, C = 2, D = 3, E = 4, F = 5;

Relation PaperFigure1() {
  return Relation::FromInts({{3, 2, 0, 4, 7, 9}, {3, 2, 1, 3, 8, 9}});
}

// Example 2 of the paper: [A,B,C] ↦ [F,E,D] is consistent with Figure 1,
// but [A,B,C] ↦ [F,D,E] is falsified.
TEST(WitnessTest, PaperExample2) {
  Relation r = PaperFigure1();
  EXPECT_TRUE(Satisfies(
      r, OrderDependency(AttributeList({A, B, C}), AttributeList({F, E, D}))));
  auto w = FindViolation(
      r, OrderDependency(AttributeList({A, B, C}), AttributeList({F, D, E})));
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->kind, ViolationKind::kSwap);
}

// Example 3 of the paper: [A,B] ~ [F,C] is consistent with Figure 1, but
// [A,C] ~ [F,D] is falsified.
TEST(WitnessTest, PaperExample3) {
  Relation r = PaperFigure1();
  EXPECT_TRUE(
      SatisfiesCompatibility(r, AttributeList({A, B}), AttributeList({F, C})));
  EXPECT_FALSE(
      SatisfiesCompatibility(r, AttributeList({A, C}), AttributeList({F, D})));
}

TEST(WitnessTest, SplitDetected) {
  // Two rows equal on A but differing on B: A ↦ B is split-falsified.
  Relation r = Relation::FromInts({{1, 1}, {1, 2}});
  auto w = FindViolation(r, OrderDependency(AttributeList({0}),
                                            AttributeList({1})));
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->kind, ViolationKind::kSplit);
  EXPECT_TRUE(FindSplit(r, AttributeList({0}), AttributeList({1})).has_value());
  EXPECT_FALSE(FindSwap(r, AttributeList({0}), AttributeList({1})).has_value());
}

TEST(WitnessTest, SwapDetected) {
  // A ascends while B descends: A ↦ B is swap-falsified.
  Relation r = Relation::FromInts({{1, 2}, {2, 1}});
  auto w = FindViolation(r, OrderDependency(AttributeList({0}),
                                            AttributeList({1})));
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->kind, ViolationKind::kSwap);
  EXPECT_TRUE(FindSwap(r, AttributeList({0}), AttributeList({1})).has_value());
  EXPECT_FALSE(
      FindSplit(r, AttributeList({0}), AttributeList({1})).has_value());
}

TEST(WitnessTest, TrivialOds) {
  Relation r = PaperFigure1();
  // X ↦ [] is satisfied by every instance.
  EXPECT_TRUE(Satisfies(
      r, OrderDependency(AttributeList({A}), AttributeList())));
  // XY ↦ X (Reflexivity instances) hold in every instance.
  EXPECT_TRUE(Satisfies(
      r, OrderDependency(AttributeList({C, D, E}), AttributeList({C, D}))));
}

TEST(WitnessTest, DependencySetSatisfaction) {
  Relation r = PaperFigure1();
  DependencySet good;
  good.Add(AttributeList({A, B, C}), AttributeList({F, E, D}));
  good.Add(AttributeList({C}), AttributeList({E}));
  EXPECT_TRUE(Satisfies(r, good));
  DependencySet bad = good;
  bad.Add(AttributeList({C}), AttributeList({D}));  // C ascends, D descends
  EXPECT_FALSE(Satisfies(r, bad));
}

// Theorem 15 (dichotomy), checked empirically: X ↦ Y holds on an instance
// iff X ↦ XY holds (no split) and X ~ Y holds (no swap).
class Theorem15PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(Theorem15PropertyTest, SplitSwapDichotomy) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int64_t> val(0, 2);
  Relation r(4);
  for (int i = 0; i < 7; ++i) {
    r.AddIntRow({val(rng), val(rng), val(rng), val(rng)});
  }
  const std::vector<AttributeList> lists = {
      AttributeList({0}), AttributeList({1, 2}), AttributeList({3, 0}),
      AttributeList({2}), AttributeList({0, 1, 2})};
  for (const auto& x : lists) {
    for (const auto& y : lists) {
      const OrderDependency dep(x, y);
      const bool holds = Satisfies(r, dep);
      const bool fd_side =
          Satisfies(r, OrderDependency(x, x.Concat(y)));
      const bool compat_side = SatisfiesCompatibility(r, x, y);
      EXPECT_EQ(holds, fd_side && compat_side)
          << dep.ToString() << " on\n"
          << r.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem15PropertyTest,
                         ::testing::Range(1, 13));

TEST(ParserTest, RoundTrip) {
  NameTable names;
  Parser parser(&names);
  auto list = parser.ParseList("[year, month, day]");
  ASSERT_TRUE(list.has_value()) << parser.error();
  EXPECT_EQ(list->Size(), 3);
  EXPECT_EQ(names.Format(*list), "[year, month, day]");

  auto od1 = parser.ParseStatement("[month] -> [quarter]");
  ASSERT_TRUE(od1.has_value()) << parser.error();
  EXPECT_EQ(od1->size(), 1u);

  auto equiv = parser.ParseStatement("[a, b] <-> [b, a]");
  ASSERT_TRUE(equiv.has_value()) << parser.error();
  EXPECT_EQ(equiv->size(), 2u);

  auto compat = parser.ParseStatement("[a] ~ [b]");
  ASSERT_TRUE(compat.has_value()) << parser.error();
  EXPECT_EQ(compat->size(), 2u);
  // X ~ Y is XY ↔ YX.
  EXPECT_EQ((*compat)[0].lhs.Size(), 2);

  auto set = parser.ParseSet("[a] -> [b]; [b] -> [c]\n[c] ~ [d]");
  ASSERT_TRUE(set.has_value()) << parser.error();
  EXPECT_EQ(set->Size(), 4);
}

TEST(ParserTest, Errors) {
  NameTable names;
  Parser parser(&names);
  EXPECT_FALSE(parser.ParseStatement("[a] [b]").has_value());
  EXPECT_FALSE(parser.ParseList("[a,, b]").has_value());
}

}  // namespace
}  // namespace od
