#include "core/relation.h"

#include <gtest/gtest.h>

#include "core/witness.h"

namespace od {
namespace {

TEST(RelationTest, FromIntsAndAccess) {
  Relation r = Relation::FromInts({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(r.num_attributes(), 2);
  EXPECT_EQ(r.num_rows(), 3);
  EXPECT_EQ(r.At(1, 0).AsInt(), 3);
  EXPECT_EQ(r.Row(2).size(), 2u);
}

TEST(RelationTest, ProjectRenumbersContiguously) {
  Relation r = Relation::FromInts({{1, 2, 3, 4}, {5, 6, 7, 8}});
  std::vector<AttributeId> mapping;
  Relation p = r.Project(AttributeSet{1, 3}, &mapping);
  EXPECT_EQ(p.num_attributes(), 2);
  EXPECT_EQ(mapping, (std::vector<AttributeId>{1, 3}));
  EXPECT_EQ(p.At(0, 0).AsInt(), 2);  // old attribute 1
  EXPECT_EQ(p.At(1, 1).AsInt(), 8);  // old attribute 3
}

TEST(RelationTest, AddConstantColumn) {
  Relation r = Relation::FromInts({{1}, {2}});
  const AttributeId c = r.AddConstantColumn(Value(int64_t{9}));
  EXPECT_EQ(c, 1);
  EXPECT_EQ(r.num_attributes(), 2);
  EXPECT_EQ(r.At(0, c).AsInt(), 9);
  EXPECT_EQ(r.At(1, c).AsInt(), 9);
  // A constant column satisfies [] ↦ [c].
  EXPECT_TRUE(Satisfies(r, OrderDependency(AttributeList(),
                                           AttributeList({c}))));
}

TEST(RelationTest, MixedTypeRows) {
  Relation r(3);
  r.AddRow({Value(int64_t{1}), Value(2.5), Value("x")});
  r.AddRow({Value(int64_t{1}), Value(3.5), Value("y")});
  EXPECT_TRUE(Satisfies(r, OrderDependency(AttributeList({1}),
                                           AttributeList({2}))));
  EXPECT_TRUE(Satisfies(r, OrderDependency(AttributeList({0}),
                                           AttributeList({0}))));
}

TEST(RelationTest, ToStringRoundTrip) {
  Relation r = Relation::FromInts({{1, 2}});
  EXPECT_EQ(r.ToString(), "1\t2\n");
}

}  // namespace
}  // namespace od
